"""Cost-model calibration: estimates vs measured execution."""

import pytest

from repro import DiskModel, FreeEngine
from repro.bench.queries import BENCHMARK_QUERIES, NULL_PLAN_QUERIES


class TestEstimateVsActual:
    def test_candidate_estimates_bounded(self, corpus, multigram_index):
        """AND-independence estimates under-count correlated grams, but
        must stay within a sane band of the measured candidates for the
        benchmark queries (no order-of-magnitude nonsense upward)."""
        engine = FreeEngine(corpus, multigram_index, disk=DiskModel())
        for name, pattern in BENCHMARK_QUERIES.items():
            if name in NULL_PLAN_QUERIES:
                continue
            cost = engine.estimate(pattern)
            report = engine.search(pattern, collect_matches=False)
            if report.used_full_scan:
                continue
            # independence can only *under*-estimate correlated ANDs;
            # upward it must not exceed actual by more than 3x.
            assert cost.candidate_units <= report.n_candidates * 3, name

    def test_null_plan_estimate_equals_scan(self, corpus, multigram_index):
        engine = FreeEngine(corpus, multigram_index, disk=DiskModel())
        for name in NULL_PLAN_QUERIES:
            cost = engine.estimate(BENCHMARK_QUERIES[name])
            assert cost.io_cost == cost.scan_io_cost, name

    def test_io_estimate_tracks_actual_for_rare_query(
        self, corpus, multigram_index
    ):
        """Cover-correlation (PCover = min) makes single-gram estimates
        near-exact; what remains is *cross*-gram correlation ("motorola"
        pages also contain "mpc"), which independence legitimately
        under-counts — bound it at two orders of magnitude."""
        engine = FreeEngine(corpus, multigram_index, disk=DiskModel())
        for name in ("powerpc", "mp3", "sigmod"):
            pattern = BENCHMARK_QUERIES[name]
            cost = engine.estimate(pattern)
            report = engine.search(pattern, collect_matches=False)
            assert cost.io_cost <= report.io_cost * 10, name
            assert report.io_cost <= max(cost.io_cost, 1) * 100, name

    def test_cover_estimate_is_min_not_product(self, corpus,
                                               multigram_index):
        """The PCover fix: a long literal's estimated candidates must
        be at least its rarest cover key's count scaled down only by
        *other* plan factors — never the astronomically small product
        of all its own covers."""
        engine = FreeEngine(corpus, multigram_index, disk=DiskModel())
        cost = engine.estimate(BENCHMARK_QUERIES["mp3"])
        report = engine.search(
            BENCHMARK_QUERIES["mp3"], collect_matches=False
        )
        assert cost.candidate_units >= report.n_candidates * 0.3

    def test_beats_scan_prediction_matches_reality(
        self, corpus, multigram_index
    ):
        """When the model predicts an index win, executing the plan must
        really cost less simulated I/O than scanning."""
        engine = FreeEngine(corpus, multigram_index, disk=DiskModel())
        scan_io = corpus.total_chars
        for name, pattern in BENCHMARK_QUERIES.items():
            cost = engine.estimate(pattern)
            if not cost.beats_scan:
                continue
            report = engine.search(pattern, collect_matches=False)
            assert report.io_cost < scan_io, name


class TestSamplerVsIndex:
    def test_sampled_selectivity_tracks_index(self, corpus, multigram_index):
        """For indexed grams, the sampler and postings agree roughly."""
        from repro.plan.sampling import SampledSelectivityEstimator

        estimator = SampledSelectivityEstimator(
            corpus, sample_size=100, seed=9
        )
        checked = 0
        for key in list(multigram_index.keys())[:500:25]:
            true_sel = multigram_index.selectivity(key)
            sampled = estimator.gram_selectivity(key)
            lo, hi = estimator.confidence_interval(sampled)
            # widen by a small absolute epsilon for tiny selectivities
            assert lo - 0.02 <= true_sel <= hi + 0.02, key
            checked += 1
        assert checked > 10
