"""Plan soundness analyzer tests: the implication prover accepts every
plan the compiler produces and rejects seeded strengthenings."""

import pytest

from repro.analysis import check_physical_plan, check_plan_pair, entails
from repro.analysis.plan_checks import Justification
from repro.bench.queries import BENCHMARK_QUERIES
from repro.plan.logical import LogicalPlan
from repro.plan.physical import (
    PAll,
    PAnd,
    PCover,
    PLookup,
    POr,
    PhysicalPlan,
)
from repro.regex.rewrite import ReqAnd, ReqAny, ReqGram, ReqOr


def gram(text):
    return ReqGram(text)


class TestEntails:
    def test_anything_entails_all(self):
        steps = []
        assert entails(gram("abc"), PAll(), steps)
        assert steps[0].rule == "true"

    def test_exact_lookup(self):
        steps = []
        assert entails(gram("abc"), PLookup("abc"), steps)
        assert [s.rule for s in steps] == ["exact"]

    def test_substring_lookup(self):
        steps = []
        assert entails(gram("motorola"), PLookup("toro"), steps)
        assert [s.rule for s in steps] == ["substring"]

    def test_non_substring_rejected(self):
        assert not entails(gram("abc"), PLookup("xyz"))

    def test_superstring_rejected(self):
        # Looking up a LONGER gram strengthens the plan: units
        # containing 'ab' need not contain 'abc'.
        assert not entails(gram("ab"), PLookup("abc"))

    def test_cover(self):
        steps = []
        cover = PCover((PLookup("mot"), PLookup("oro"), PLookup("ola")))
        assert entails(gram("motorola"), cover, steps)
        assert steps[-1].rule == "cover"

    def test_cover_with_foreign_key_rejected(self):
        cover = PCover((PLookup("mot"), PLookup("zzz")))
        assert not entails(gram("motorola"), cover)

    def test_and_elim(self):
        req = ReqAnd((gram("abc"), gram("def")))
        steps = []
        assert entails(req, PLookup("def"), steps)
        assert steps[-1].rule == "and-elim"

    def test_and_intro(self):
        req = ReqAnd((gram("abc"), gram("def")))
        phys = PAnd((PLookup("abc"), PLookup("def")))
        steps = []
        assert entails(req, phys, steps)
        assert steps[-1].rule == "and-intro"

    def test_and_intro_with_extra_conjunct_rejected(self):
        # AND(abc, zzz) is stronger than GRAM(abc): rejected.
        phys = PAnd((PLookup("abc"), PLookup("zzz")))
        assert not entails(gram("abc"), phys)

    def test_or_elim(self):
        req = ReqOr((gram("abc"), gram("abd")))
        steps = []
        assert entails(req, PLookup("ab"), steps)
        assert steps[-1].rule == "or-elim"

    def test_or_elim_requires_every_disjunct(self):
        req = ReqOr((gram("abc"), gram("xyz")))
        assert not entails(req, PLookup("ab"))

    def test_or_intro(self):
        phys = POr((PLookup("abc"), PLookup("zzz")))
        steps = []
        assert entails(gram("abc"), phys, steps)
        assert steps[-1].rule == "or-intro"

    def test_dropping_a_disjunct_rejected(self):
        # Physical OR(abc) for logical OR(abc, xyz) loses xyz matches.
        req = ReqOr((gram("abc"), gram("xyz")))
        assert not entails(req, PLookup("abc"))

    def test_or_to_or_disjunctwise(self):
        # Each logical disjunct maps to its own physical disjunct;
        # needs or-elim on the logical side to split first.
        req = ReqOr((gram("auction"), gram("bidder")))
        phys = POr((PLookup("tion"), PLookup("idde")))
        steps = []
        assert entails(req, phys, steps)
        rules = {s.rule for s in steps}
        assert "or-elim" in rules and "or-intro" in rules

    def test_nested_conjunct_through_or(self):
        # The ebay shape: AND(eb, OR(tion, COVER(bid, idde, dde)))
        # for AND(ebay, OR(auction, bidder)).  The POr branch must
        # fall through to and-elim on the logical side.
        req = ReqAnd((
            gram("ebay"),
            ReqOr((gram("auction"), gram("bidder"))),
        ))
        phys = PAnd((
            PLookup("eb"),
            POr((
                PLookup("tion"),
                PCover((PLookup("bid"), PLookup("idde"))),
            )),
        ))
        steps = []
        assert entails(req, phys, steps)
        assert steps[-1].rule == "and-intro"

    def test_failure_leaves_justifications_untouched(self):
        steps = [Justification("exact", "x", "y")]
        assert not entails(gram("abc"), PLookup("xyz"), steps)
        assert len(steps) == 1


def plan_pair(pattern, index, **kwargs):
    logical = LogicalPlan.from_pattern(pattern)
    physical = PhysicalPlan.compile(logical, index, **kwargs)
    return logical, physical


def errors(findings):
    return [f for f in findings if f.severity.label() == "error"]


class TestCheckPlanPair:
    @pytest.mark.parametrize(
        "pattern", sorted(BENCHMARK_QUERIES.values())
    )
    def test_benchmark_plans_prove_sound(self, multigram_index, pattern):
        logical, physical = plan_pair(pattern, multigram_index)
        findings, justifications = check_plan_pair(
            logical, physical, multigram_index
        )
        assert errors(findings) == []
        assert justifications  # the proof is recorded, not just True

    @pytest.mark.parametrize("policy", ["all", "best", "cheapest2"])
    def test_every_cover_policy_sound(self, presuf_index, policy):
        pattern = BENCHMARK_QUERIES["powerpc"]
        logical, physical = plan_pair(
            pattern, presuf_index, policy=policy
        )
        findings, _ = check_plan_pair(logical, physical, presuf_index)
        assert errors(findings) == []

    def test_seeded_unsound_plan_flagged(self, multigram_index):
        logical = LogicalPlan.from_pattern("clinton")
        # Forge a plan that looks up an unrelated key: candidate sets
        # would silently lose every true match.
        physical = PhysicalPlan(
            pattern="clinton",
            root=PLookup("mot"),
            unavailable_grams=(),
        )
        findings, _ = check_plan_pair(logical, physical)
        assert "PLAN001" in [f.code for f in findings]
        plan001 = next(f for f in findings if f.code == "PLAN001")
        assert plan001.paper_ref == "§4.3"

    def test_foreign_lookup_key_flagged(self, multigram_index):
        logical = LogicalPlan.from_pattern("clinton")
        physical = PhysicalPlan(
            pattern="clinton",
            root=PLookup("clin-no-such-key"),
            unavailable_grams=(),
        )
        findings, _ = check_plan_pair(
            logical, physical, multigram_index
        )
        assert "PLAN002" in [f.code for f in findings]

    def test_surviving_all_child_flagged(self):
        physical = PhysicalPlan(
            pattern="x",
            root=PAnd((PLookup("ab"), PAll())),
            unavailable_grams=(),
        )
        findings = check_physical_plan(physical)
        assert any(
            f.code == "PLAN003" and f.severity.label() == "error"
            for f in findings
        )
        assert any("Table 2" in f.paper_ref for f in findings)

    def test_single_child_connective_warns(self):
        physical = PhysicalPlan(
            pattern="x",
            root=POr((PLookup("ab"),)),
            unavailable_grams=(),
        )
        findings = check_physical_plan(physical)
        assert [f.code for f in findings] == ["PLAN003"]
        assert findings[0].severity.label() == "warning"

    def test_duplicate_children_warn(self):
        physical = PhysicalPlan(
            pattern="x",
            root=PAnd((PLookup("ab"), PLookup("ab"))),
            unavailable_grams=(),
        )
        findings = check_physical_plan(physical)
        assert "PLAN003" in [f.code for f in findings]

    def test_compiled_plans_pass_normal_form(self, multigram_index):
        for pattern in BENCHMARK_QUERIES.values():
            _, physical = plan_pair(pattern, multigram_index)
            assert errors(check_physical_plan(physical)) == []

    def test_full_scan_plan_is_sound(self, multigram_index):
        # A pattern with no useful grams compiles to ALL — trivially
        # sound (weakest possible plan), never a PLAN001.
        logical, physical = plan_pair("[0-9]", multigram_index)
        findings, justifications = check_plan_pair(
            logical, physical, multigram_index
        )
        assert errors(findings) == []
