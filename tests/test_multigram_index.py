"""GramIndex container tests + serialization round trips."""

import os

import pytest

from repro.corpus.store import InMemoryCorpus
from repro.errors import SerializationError
from repro.index.builder import build_multigram_index
from repro.index.multigram import GramIndex
from repro.index.postings import PostingsList
from repro.index.serialize import load_index, save_index


def small_index():
    postings = {
        "abc": PostingsList.from_ids([0, 2]),
        "xy": PostingsList.from_ids([1]),
        "q": PostingsList.from_ids([]),
    }
    return GramIndex(postings, kind="multigram", n_docs=3, threshold=0.5,
                     max_gram_len=5)


class TestGramIndex:
    def test_contains_and_lookup(self):
        index = small_index()
        assert "abc" in index
        assert "zzz" not in index
        assert index.lookup("abc").ids() == [0, 2]

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            small_index().lookup("nope")

    def test_len_and_keys(self):
        index = small_index()
        assert len(index) == 3
        assert set(index.keys()) == {"abc", "xy", "q"}

    def test_covering_substrings(self):
        index = small_index()
        assert set(index.covering_substrings("zabcz")) == {"abc"}
        assert set(index.covering_substrings("qxy")) == {"q", "xy"}
        assert index.covering_substrings("zzz") == []

    def test_selectivity(self):
        index = small_index()
        assert index.selectivity("abc") == pytest.approx(2 / 3)
        assert index.selectivity("missing") is None

    def test_derived_stats(self):
        index = small_index()
        assert index.stats.n_keys == 3
        assert index.stats.n_postings == 3
        assert index.stats.keys_by_length == {3: 1, 2: 1, 1: 1}

    def test_negative_docs_rejected(self):
        from repro.errors import IndexBuildError

        with pytest.raises(IndexBuildError):
            GramIndex({}, kind="multigram", n_docs=-1)


class TestSerialization:
    def test_roundtrip_small(self, tmp_path):
        index = small_index()
        path = str(tmp_path / "idx.img")
        save_index(index, path)
        loaded = load_index(path)
        assert set(loaded.keys()) == set(index.keys())
        for key in index.keys():
            assert loaded.lookup(key) == index.lookup(key)
        assert loaded.kind == index.kind
        assert loaded.n_docs == index.n_docs
        assert loaded.threshold == index.threshold
        assert loaded.max_gram_len == index.max_gram_len

    def test_roundtrip_real_index(self, tmp_path):
        corpus = InMemoryCorpus.from_texts(
            ["the cat sat on the mat", "a cat ran", "dogs bark a lot"]
        )
        index = build_multigram_index(corpus, threshold=0.4, max_gram_len=6)
        path = str(tmp_path / "real.img")
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.stats.n_keys == index.stats.n_keys
        assert loaded.stats.n_postings == index.stats.n_postings
        for key in list(index.keys())[:50]:
            assert loaded.lookup(key).ids() == index.lookup(key).ids()

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.img")
        with open(path, "wb") as out:
            out.write(b"NOTANIDX" + b"\x00" * 32)
        with pytest.raises(SerializationError):
            load_index(path)

    def test_truncated_file(self, tmp_path):
        index = small_index()
        path = str(tmp_path / "trunc.img")
        save_index(index, path)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 5)
        with pytest.raises(SerializationError):
            load_index(path)

    def test_empty_index_roundtrip(self, tmp_path):
        index = GramIndex({}, kind="multigram", n_docs=0)
        path = str(tmp_path / "empty.img")
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 0


class TestStats:
    def test_as_row_fields(self):
        row = small_index().stats.as_row()
        assert row["gram_keys"] == 3
        assert "postings" in row and "construction_time_s" in row

    def test_postings_per_key(self):
        assert small_index().stats.postings_per_key == 1.0

    def test_ratio_zero_without_corpus_chars(self):
        assert small_index().stats.postings_to_corpus_ratio == 0.0
