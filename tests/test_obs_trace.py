"""Span tracing tests: structure, timings, rendering, no-op path."""

import pytest

from repro.obs.clock import ManualClock, monotonic, set_clock, use_clock
from repro.obs.trace import Trace, _NULL_SPAN, maybe_span


class TestManualClock:
    def test_advance(self):
        clock = ManualClock()
        start = clock()
        clock.advance(1.5)
        assert clock() == pytest.approx(start + 1.5)

    def test_negative_advance_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_use_clock_scopes_the_swap(self):
        clock = ManualClock(start=5.0)
        with use_clock(clock):
            assert monotonic() == pytest.approx(5.0)
            clock.advance(2.0)
            assert monotonic() == pytest.approx(7.0)
        # Outside the scope the real clock is back: two reads advance
        # on their own while the manual clock stays frozen at 7.0.
        first, second = monotonic(), monotonic()
        assert second > first

    def test_set_clock_restores(self):
        clock = ManualClock()
        previous = set_clock(clock)
        try:
            clock.advance(1.0)
            assert monotonic() == clock()
        finally:
            set_clock(previous)


class TestTraceStructure:
    def test_nesting_follows_call_stack(self):
        trace = Trace()
        with trace.span("search"):
            with trace.span("plan"):
                with trace.span("parse"):
                    pass
            with trace.span("verify"):
                pass
        root = trace.root
        assert root.name == "search"
        assert [c.name for c in root.children] == ["plan", "verify"]
        assert [c.name for c in root.children[0].children] == ["parse"]

    def test_attrs_recorded_and_mutable(self):
        trace = Trace()
        with trace.span("postings_fetch", gram="abc") as span:
            span.attrs["n_ids"] = 7
        span = trace.find("postings_fetch")[0]
        assert span.attrs == {"gram": "abc", "n_ids": 7}

    def test_find_preorder(self):
        trace = Trace()
        with trace.span("a"):
            with trace.span("x", seq=1):
                pass
            with trace.span("x", seq=2):
                pass
        assert [s.attrs["seq"] for s in trace.find("x")] == [1, 2]

    def test_span_closes_on_exception(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("search"):
                with trace.span("verify"):
                    raise RuntimeError("boom")
        assert trace._stack == []
        assert trace.root.duration_seconds >= 0.0


class TestTraceIdentity:
    def test_trace_mints_an_id_by_default(self):
        import re

        assert re.fullmatch(r"[0-9a-f]{32}", Trace().trace_id)
        assert Trace().trace_id != Trace().trace_id

    def test_explicit_trace_id_adopted(self):
        tid = "ab" * 16
        trace = Trace(trace_id=tid)
        assert trace.trace_id == tid
        assert trace.as_dict()["trace_id"] == tid

    def test_every_span_carries_a_distinct_span_id(self):
        import re

        trace = Trace()
        with trace.span("search"):
            with trace.span("plan"):
                pass
            with trace.span("verify"):
                pass
        spans = [trace.root] + trace.root.children
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids)
        for span_id in ids:
            assert re.fullmatch(r"[0-9a-f]{16}", span_id)
        payload = trace.as_dict()["spans"][0]
        assert payload["span_id"] == trace.root.span_id


class TestTraceTimings:
    def _timed_trace(self):
        clock = ManualClock()
        trace = Trace(clock=clock)
        with trace.span("search"):
            with trace.span("plan"):
                clock.advance(0.010)
            with trace.span("verify"):
                clock.advance(0.030)
            clock.advance(0.005)  # glue code outside leaf spans
        return trace

    def test_durations_exact_with_manual_clock(self):
        trace = self._timed_trace()
        assert trace.total_seconds() == pytest.approx(0.045)
        assert trace.leaf_seconds() == pytest.approx(0.040)
        plan = trace.find("plan")[0]
        assert plan.duration_seconds == pytest.approx(0.010)

    def test_leaf_spans_sum_within_total(self):
        trace = self._timed_trace()
        assert trace.leaf_seconds() <= trace.total_seconds()
        root = trace.root
        assert root.self_seconds() == pytest.approx(0.005)

    def test_as_dict_round_trip_shape(self):
        payload = self._timed_trace().as_dict()
        assert payload["total_seconds"] == pytest.approx(0.045)
        assert payload["spans"][0]["name"] == "search"
        child_names = [
            c["name"] for c in payload["spans"][0]["children"]
        ]
        assert child_names == ["plan", "verify"]

    def test_render_shows_tree_and_footer(self):
        text = self._timed_trace().render()
        lines = text.splitlines()
        assert lines[0] == "trace:"
        assert "search" in lines[1]
        assert lines[2].startswith("    plan")
        assert "leaf spans cover" in lines[-1]


class TestMaybeSpan:
    def test_none_trace_returns_shared_noop(self):
        assert maybe_span(None, "anything") is _NULL_SPAN
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_live_trace_records(self):
        trace = Trace()
        with maybe_span(trace, "plan") as span:
            assert span is not None
        assert [s.name for s in trace.roots] == ["plan"]
