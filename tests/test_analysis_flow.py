"""CFG/dataflow layer tests: graph shape, reaching definitions, and
the resource ownership lattice that CONC/RES rules build on."""

import ast
import textwrap

import pytest

from repro.analysis.flow import (
    CFG,
    FlowJustification,
    ReachingDefinitions,
    analyze_resource,
    header_exprs,
    own_body_nodes,
)


def parse_fn(snippet):
    tree = ast.parse(textwrap.dedent(snippet))
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return fn


def fn_and_cfg(snippet):
    fn = parse_fn(snippet)
    return fn, CFG.from_function(fn)


class TestCfgShape:
    def test_branch_join_reaches_exit_from_both_arms(self):
        fn, cfg = fn_and_cfg("""
        def f(flag):
            if flag:
                a = 1
            else:
                a = 2
            return a
        """)
        branch = fn.body[0]
        then_stmt, else_stmt = branch.body[0], branch.orelse[0]
        ret = fn.body[1]
        assert cfg.path_exists(
            cfg.position_of(then_stmt), cfg.position_of(ret)
        )
        assert cfg.path_exists(
            cfg.position_of(else_stmt), cfg.position_of(ret)
        )
        # The arms are exclusive: no path from one into the other.
        assert not cfg.path_exists(
            cfg.position_of(then_stmt), cfg.position_of(else_stmt)
        )

    def test_header_is_placed_separately_from_body(self):
        fn, cfg = fn_and_cfg("""
        def f(flag):
            if flag:
                a = 1
            return flag
        """)
        branch = fn.body[0]
        header_pos = cfg.position_of(branch)
        body_pos = cfg.position_of(branch.body[0])
        assert header_pos is not None and body_pos is not None
        assert header_pos[0] != body_pos[0]
        # Only the test expression is evaluated in the header block.
        assert header_exprs(branch) == [branch.test]

    def test_loop_back_edge(self):
        fn, cfg = fn_and_cfg("""
        def f(items):
            total = 0
            for item in items:
                total = total + 1
            return total
        """)
        body_stmt = fn.body[1].body[0]
        pos = cfg.position_of(body_stmt)
        # Strictly-forward path from the body back to itself: the
        # back edge through the loop header makes it reachable.
        assert cfg.path_exists(pos, pos)

    def test_break_exits_the_loop(self):
        fn, cfg = fn_and_cfg("""
        def f(items):
            for item in items:
                break
                shadow = 1
            return items
        """)
        brk = fn.body[0].body[0]
        shadow = fn.body[0].body[1]
        ret = fn.body[1]
        assert cfg.path_exists(
            cfg.position_of(brk), cfg.position_of(ret)
        )
        assert not cfg.path_exists(
            cfg.position_of(brk), cfg.position_of(shadow)
        )

    def test_try_body_reaches_handler_and_finally(self):
        fn, cfg = fn_and_cfg("""
        def f(path, sink):
            try:
                sink.write(path)
            except OSError:
                sink.reset()
            finally:
                sink.flush()
            return sink
        """)
        try_stmt = fn.body[0]
        body_pos = cfg.position_of(try_stmt.body[0])
        handler_pos = cfg.position_of(try_stmt.handlers[0].body[0])
        finally_pos = cfg.position_of(try_stmt.finalbody[0])
        assert cfg.path_exists(body_pos, handler_pos)
        assert cfg.path_exists(body_pos, finally_pos)
        assert cfg.path_exists(handler_pos, finally_pos)

    def test_early_return_cuts_the_path(self):
        fn, cfg = fn_and_cfg("""
        def f(a):
            if a:
                return 0
            mid = 1
            return mid
        """)
        early = fn.body[0].body[0]
        mid = fn.body[1]
        assert not cfg.path_exists(
            cfg.position_of(early), cfg.position_of(mid)
        )

    def test_code_after_return_is_unreachable(self):
        fn, cfg = fn_and_cfg("""
        def f(x):
            return x
            dead = 1
        """)
        dead_pos = cfg.position_of(fn.body[1])
        assert dead_pos is not None
        assert dead_pos[0] not in cfg.reachable_blocks()

    def test_from_function_rejects_non_functions(self):
        with pytest.raises(TypeError):
            CFG.from_function(ast.parse("x = 1").body[0])


class TestReachingDefinitions:
    def test_branch_join_merges_both_definitions(self):
        fn, cfg = fn_and_cfg("""
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
        """)
        rd = ReachingDefinitions(cfg, ["flag"])
        defs = rd.at_statement(fn.body[1], "x")
        assert len(defs) == 2
        assert {d.value.value for d in defs} == {1, 2}

    def test_loop_carried_definition_reaches_loop_top(self):
        fn, cfg = fn_and_cfg("""
        def f(items):
            total = 0
            for item in items:
                total = total + 1
            return total
        """)
        rd = ReachingDefinitions(cfg, ["items"])
        body_stmt = fn.body[1].body[0]
        kinds = {d.kind for d in rd.at_statement(body_stmt, "total")}
        # Both the init and the loop-carried redefinition reach.
        assert kinds == {"assign"}
        assert len(rd.at_statement(body_stmt, "total")) == 2

    def test_straight_line_kill(self):
        fn, cfg = fn_and_cfg("""
        def f():
            x = 1
            x = 2
            return x
        """)
        rd = ReachingDefinitions(cfg, [])
        defs = rd.at_statement(fn.body[2], "x")
        assert [d.value.value for d in defs] == [2]

    def test_parameter_definition(self):
        fn, cfg = fn_and_cfg("""
        def f(endpoint):
            return endpoint
        """)
        rd = ReachingDefinitions(cfg, ["endpoint"])
        defs = rd.at_statement(fn.body[0], "endpoint")
        assert [d.kind for d in defs] == ["param"]

    def test_early_return_does_not_leak_definition(self):
        fn, cfg = fn_and_cfg("""
        def f(a):
            if a:
                x = 1
                return x
            x = 2
            return x
        """)
        rd = ReachingDefinitions(cfg, ["a"])
        final_ret = fn.body[2]
        defs = rd.at_statement(final_ret, "x")
        assert [d.value.value for d in defs] == [2]


def lattice(snippet):
    fn = parse_fn(snippet)
    cfg = CFG.from_function(fn)
    creation = fn.body[0]
    assert isinstance(creation, ast.Assign)
    name = creation.targets[0].id
    return analyze_resource(cfg, name, creation)


class TestResourceLattice:
    def test_early_return_leak(self):
        events = lattice("""
        def f(path, flag):
            handle = open(path)
            if flag:
                return 1
            handle.close()
            return 0
        """)
        assert [e.kind for e in events] == ["may-leak"]

    def test_closed_on_every_path_is_clean(self):
        events = lattice("""
        def f(path, flag):
            handle = open(path)
            if flag:
                handle.close()
                return 1
            handle.close()
            return 0
        """)
        assert events == []

    def test_definite_double_close(self):
        events = lattice("""
        def f(path):
            handle = open(path)
            handle.close()
            handle.close()
        """)
        assert [e.kind for e in events] == ["double-close"]

    def test_close_in_except_then_after_is_not_double(self):
        # MUST-analysis: the fall-through path into the final close
        # never went through the except handler, so this is legal.
        events = lattice("""
        def f(path, sink):
            handle = open(path)
            try:
                sink.write(handle.read())
            except OSError:
                handle.close()
                raise
            handle.close()
        """)
        assert events == []

    def test_with_adoption_transfers(self):
        events = lattice("""
        def f(path):
            handle = open(path)
            with handle:
                pass
            return None
        """)
        assert events == []

    def test_return_transfers(self):
        events = lattice("""
        def f(path):
            handle = open(path)
            return handle
        """)
        assert events == []

    def test_call_argument_transfers(self):
        events = lattice("""
        def f(path, registry):
            handle = open(path)
            registry.adopt(handle)
            return None
        """)
        assert events == []

    def test_method_call_on_resource_is_not_a_transfer(self):
        # Regression: `handle.read()` is a use, not a hand-off — the
        # handle must still be closed.
        events = lattice("""
        def f(path):
            handle = open(path)
            data = handle.read()
            return data
        """)
        assert [e.kind for e in events] == ["may-leak"]

    def test_reassignment_stops_tracking(self):
        events = lattice("""
        def f(path):
            handle = open(path)
            handle = None
            return handle
        """)
        assert events == []

    def test_loop_close_then_leak_on_reentry(self):
        # Closing inside the loop then iterating again re-reaches the
        # exit with the resource open on the no-iteration path? No —
        # creation precedes the loop, so the zero-iteration path
        # leaks.
        events = lattice("""
        def f(path, items):
            handle = open(path)
            for item in items:
                handle.close()
            return None
        """)
        assert "may-leak" in [e.kind for e in events]


class TestAstHelpers:
    def test_own_body_nodes_excludes_nested_function_bodies(self):
        fn = parse_fn("""
        def outer():
            x = 1
            def inner():
                y = 2
            return x
        """)
        nodes = list(own_body_nodes(fn))
        assigned = {
            t.id for n in nodes if isinstance(n, ast.Assign)
            for t in n.targets if isinstance(t, ast.Name)
        }
        assert "x" in assigned
        assert "y" not in assigned
        # The nested def itself is still yielded (callable shape).
        assert any(
            isinstance(n, ast.FunctionDef) and n.name == "inner"
            for n in nodes
        )

    def test_justification_render_contract(self):
        step = FlowJustification(
            "RES001", "resource escapes", evidence="open@3 ->* exit"
        )
        assert step.render() == (
            "RES001: resource escapes  [open@3 ->* exit]"
        )
        bare = FlowJustification("CONC001", "blocking call on loop")
        assert bare.render() == "CONC001: blocking call on loop"
