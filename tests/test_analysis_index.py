"""Index invariant analyzer tests: clean fixtures stay clean, seeded
violations are detected with the right code and paper reference."""

import pytest

from repro.analysis import (
    check_gram_index,
    check_key_set,
    check_segmented_index,
)
from repro.analysis.index_checks import check_ingest_directory
from repro.corpus.document import DataUnit
from repro.corpus.store import InMemoryCorpus
from repro.index.builder import MultigramIndexBuilder
from repro.index.multigram import GramIndex
from repro.index.postings import (
    BlockedPostingsList,
    PostingsList,
    encode_gaps,
)
from repro.index.segmented import SegmentedGramIndex
from repro.index.serialize import MappedGramIndex, load_index, save_index


def make_index(key_ids, kind="multigram", n_docs=10, **kwargs):
    postings = {
        key: PostingsList.from_ids(ids) for key, ids in key_ids.items()
    }
    return GramIndex(postings, kind=kind, n_docs=n_docs, **kwargs)


def codes(findings):
    return [f.code for f in findings]


def errors(findings):
    return [f for f in findings if f.severity.label() == "error"]


class TestKeySet:
    def test_prefix_free_set_is_clean(self):
        assert check_key_set(["ab", "cd", "ba"], "multigram") == []

    def test_prefix_violation_detected(self):
        findings = check_key_set(["ab", "abc", "cd"], "multigram")
        assert codes(findings) == ["IDX001"]
        assert findings[0].paper_ref == "Thm 3.9"
        assert "'ab'" in findings[0].message

    def test_complete_kind_skips_prefix_check(self):
        # A complete index unions k-gram lengths; prefix nesting is by
        # design there, not a Theorem 3.9 violation.
        assert check_key_set(["ab", "abc"], "complete") == []

    def test_suffix_violation_detected_for_presuf(self):
        findings = check_key_set(["xab", "ab"], "presuf")
        assert "IDX003" in codes(findings)
        idx003 = next(f for f in findings if f.code == "IDX003")
        assert idx003.paper_ref == "Def 3.11 / Obs 3.13"

    def test_suffix_nesting_allowed_for_multigram(self):
        # Suffix-freeness only binds the presuf shell.
        assert check_key_set(["xab", "ab"], "multigram") == []

    def test_shell_fixpoint_violation_detected(self):
        # 'xab' should have been pruned to its suffix 'ab'.
        findings = check_key_set(["xab", "ab"], "presuf")
        assert "IDX004" in codes(findings)
        idx004 = next(f for f in findings if f.code == "IDX004")
        assert idx004.paper_ref == "Obs 3.13/3.14"

    def test_clean_presuf_set(self):
        assert check_key_set(["ab", "ba", "cc"], "presuf") == []


class TestGramIndex:
    def test_fixture_multigram_index_clean(self, multigram_index):
        assert errors(check_gram_index(multigram_index)) == []

    def test_fixture_presuf_index_clean(self, presuf_index):
        assert errors(check_gram_index(presuf_index)) == []

    def test_fixture_complete_index_clean(self, complete_index):
        assert errors(check_gram_index(complete_index)) == []

    def test_postings_bound_violation(self):
        # 4 postings over a 2-char corpus cannot happen (Obs 3.8).
        index = make_index({"ab": [0, 1, 2, 3]}, n_docs=4)
        findings = check_gram_index(index, corpus_chars=2)
        assert "IDX002" in codes(findings)
        idx002 = next(f for f in findings if f.code == "IDX002")
        assert idx002.paper_ref == "Obs 3.8"

    def test_postings_bound_respects_index_stats(self):
        index = make_index({"ab": [0, 1]}, n_docs=2)
        index.stats.corpus_chars = 1
        assert "IDX002" in codes(check_gram_index(index))

    def test_postings_bound_skipped_without_corpus_size(self):
        index = make_index({"ab": [0, 1, 2, 3]}, n_docs=4)
        index.stats.corpus_chars = 0  # unknown
        assert "IDX002" not in codes(check_gram_index(index))

    def test_out_of_range_doc_id(self):
        index = make_index({"ab": [0, 99]}, n_docs=4)
        findings = check_gram_index(index)
        assert "IDX005" in codes(findings)

    def test_header_count_mismatch(self):
        # Forge a postings list whose header lies about the count.
        bad = PostingsList(encode_gaps([0, 1, 2]), 2)
        index = GramIndex({"ab": bad}, kind="multigram", n_docs=4)
        findings = check_gram_index(index)
        assert "IDX006" in codes(findings)

    def test_corrupt_payload(self):
        # 0x80 continuation bit with no terminating byte.
        bad = PostingsList(b"\x80", 1)
        index = GramIndex({"ab": bad}, kind="multigram", n_docs=4)
        findings = check_gram_index(index)
        assert "IDX006" in codes(findings)

    def test_empty_postings_is_warning_not_error(self):
        index = make_index({"ab": []}, n_docs=4)
        findings = check_gram_index(index)
        assert "IDX007" in codes(findings)
        assert errors(findings) == []

    def test_stats_drift_is_warning(self):
        index = make_index({"ab": [0, 1]}, n_docs=4)
        index.stats.n_postings = 99
        findings = check_gram_index(index)
        assert "IDX008" in codes(findings)
        assert errors(findings) == []

    def test_directory_trie_drift(self):
        index = make_index({"ab": [0, 1]}, n_docs=4)
        index.trie.insert("zz")  # trie key with no postings
        findings = check_gram_index(index)
        assert "IDX009" in codes(findings)

    def test_witness_cap(self):
        # 20 broken keys must not produce 20 findings per invariant.
        index = make_index(
            {f"k{i:02d}": [99] for i in range(20)}, n_docs=4
        )
        idx005 = [f for f in check_gram_index(index) if f.code == "IDX005"]
        assert len(idx005) <= 5

    def test_loaded_image_checks_clean(self, tmp_path, multigram_index):
        path = str(tmp_path / "img.idx")
        save_index(multigram_index, path)
        loaded = load_index(path)
        # corpus_chars survives the round trip, so Obs 3.8 is
        # checkable on the image without re-reading the corpus.
        assert loaded.stats.corpus_chars == (
            multigram_index.stats.corpus_chars
        )
        assert errors(check_gram_index(loaded)) == []


def blocked_index(plist):
    return GramIndex({"ab": plist}, kind="multigram", n_docs=1000)


class TestBlockedPostings:
    """IDX010..IDX012: the FREEIDX2 skip-table invariants."""

    def test_well_formed_blocked_list_clean(self):
        plist = BlockedPostingsList.from_ids(range(40), block_size=8)
        assert errors(check_gram_index(blocked_index(plist))) == []

    def test_skip_table_count_drift(self):
        good = BlockedPostingsList.from_ids(range(20), block_size=8)
        bad = BlockedPostingsList(
            good._buf, good._first_ids, good._block_counts,
            good._block_bounds, 19, good.nbytes,
        )
        findings = check_gram_index(blocked_index(bad))
        assert "IDX010" in codes(findings)

    def test_empty_block_detected(self):
        bad = BlockedPostingsList(b"", [0], [0], [0, 0], 0, 0)
        findings = check_gram_index(blocked_index(bad))
        assert "IDX010" in codes(findings)

    def test_flat_form_byte_accounting_drift(self):
        data = encode_gaps([1, 2, 3])
        bad = BlockedPostingsList(data, None, None, None, 3,
                                  len(data) + 7)
        findings = check_gram_index(blocked_index(bad))
        assert "IDX010" in codes(findings)

    def test_corrupt_block_payload(self):
        # A lone continuation byte: the block can never decode.
        bad = BlockedPostingsList(b"\x80", [0], [2], [0, 1], 2, 1)
        findings = check_gram_index(blocked_index(bad))
        assert "IDX010" in codes(findings)

    def test_block_first_ids_must_increase(self):
        bad = BlockedPostingsList(b"", [5, 5], [1, 1], [0, 0, 0], 2, 2)
        findings = check_gram_index(blocked_index(bad))
        assert "IDX011" in codes(findings)

    def test_decoded_block_overlap(self):
        # Block 0 runs up to id 10 but block 1's header claims 5: the
        # headers increase, yet the decoded ranges overlap.
        b0 = encode_gaps([2, 10], previous=0)
        b1 = encode_gaps([7], previous=5)
        bad = BlockedPostingsList(
            b0 + b1, [0, 5], [3, 2],
            [0, len(b0), len(b0) + len(b1)], 5, 9,
        )
        findings = check_gram_index(blocked_index(bad))
        assert "IDX011" in codes(findings)

    def test_v2_image_postings_bound_is_idx012(
        self, tmp_path, multigram_index
    ):
        path = str(tmp_path / "img.idx")
        save_index(multigram_index, path, version=2)
        loaded = load_index(path)
        assert isinstance(loaded, MappedGramIndex)
        findings = check_gram_index(loaded, corpus_chars=2)
        assert "IDX012" in codes(findings)
        assert "IDX002" not in codes(findings)
        idx012 = next(f for f in findings if f.code == "IDX012")
        assert idx012.paper_ref == "Obs 3.8"


BUILDER = MultigramIndexBuilder(threshold=0.3, max_gram_len=5)

TEXTS = [
    "the cat sat on the mat",
    "william jefferson clinton",
    "motorola mpc750 chip",
    "nothing to see here",
    "the cat ran fast",
    "buy this mp3 song now",
]


def seg_index():
    corpus = InMemoryCorpus.from_texts(TEXTS)
    return SegmentedGramIndex.build(
        corpus, segment_docs=3, builder=BUILDER
    )


class TestSegmented:
    def test_fresh_segmented_index_clean(self):
        assert errors(check_segmented_index(seg_index())) == []

    def test_clean_after_add_and_delete(self):
        seg = seg_index()
        seg.add_documents([DataUnit(len(TEXTS), "a brand new page")])
        seg.delete(0)
        assert errors(check_segmented_index(seg)) == []

    def test_epoch_too_low_detected(self):
        seg = seg_index()
        seg.epoch = 0  # forge a skipped bump
        findings = check_segmented_index(seg)
        assert "SEG005" in codes(findings)
        seg005 = next(f for f in findings if f.code == "SEG005")
        assert "epoch" in seg005.message

    def test_ghost_tombstone_detected(self):
        seg = seg_index()
        seg.segments[0].deleted.add(999)  # id segment[0] never held
        assert "SEG003" in codes(check_segmented_index(seg))

    def test_dangling_route_detected(self):
        seg = seg_index()
        seg._segment_of[999] = seg.segments[0]
        assert "SEG002" in codes(check_segmented_index(seg))

    def test_misroute_detected(self):
        seg = seg_index()
        some_id = seg.segments[0].global_ids[0]
        seg._segment_of[some_id] = seg.segments[1]
        assert "SEG002" in codes(check_segmented_index(seg))

    def test_per_segment_invariants_recursed(self):
        seg = seg_index()
        seg.segments[0].index.stats.n_keys = 9999
        findings = check_segmented_index(seg)
        assert "IDX008" in codes(findings)
        assert "segment[0]" in next(
            f for f in findings if f.code == "IDX008"
        ).subject


def ingest_dir(tmp_path, n_docs=6, deletes=(), memtable_docs=2):
    from repro.index.ingest import IngestDirectory
    from repro.obs.registry import MetricsRegistry

    directory = IngestDirectory(
        str(tmp_path),
        builder=BUILDER,
        memtable_docs=memtable_docs,
        auto_compact=False,
        registry=MetricsRegistry(),
    )
    for text in TEXTS[:n_docs]:
        directory.add(text)
    for doc_id in deletes:
        directory.delete(doc_id)
    return directory


class TestIngestDirectoryChecks:
    """SEG006..SEG008: the durable-lifecycle invariants."""

    def test_clean_directory_passes(self, tmp_path):
        with ingest_dir(tmp_path, deletes=[1]) as directory:
            assert errors(check_ingest_directory(directory)) == []

    def test_clean_after_compaction(self, tmp_path):
        with ingest_dir(tmp_path, deletes=[1, 4]) as directory:
            directory.compact()
            assert errors(check_ingest_directory(directory)) == []

    def test_clean_reopened_read_only(self, tmp_path):
        from repro.index.ingest import IngestDirectory
        from repro.obs.registry import MetricsRegistry

        ingest_dir(tmp_path, deletes=[3]).close()
        with IngestDirectory(
            str(tmp_path), create=False, read_only=True,
            registry=MetricsRegistry(),
        ) as reader:
            assert errors(check_ingest_directory(reader)) == []

    def test_generation_drift_detected(self, tmp_path):
        with ingest_dir(tmp_path) as directory:
            directory._generation += 1  # forge a lost swap
            findings = check_ingest_directory(directory)
            assert "SEG006" in codes(findings)
            assert "generation" in next(
                f for f in findings if f.code == "SEG006"
            ).message

    def test_unmounted_segment_detected(self, tmp_path):
        with ingest_dir(tmp_path) as directory:
            # Drop a mounted segment behind the manifest's back.
            victim = directory.index.segments[0]
            directory.index.drop_segments([victim])
            findings = check_ingest_directory(directory)
            assert "SEG006" in codes(findings)

    def test_epoch_below_generation_detected(self, tmp_path):
        with ingest_dir(tmp_path) as directory:
            directory.index.epoch = 0
            findings = check_ingest_directory(directory)
            assert "SEG006" in codes(findings)

    def test_corpus_index_desync_detected(self, tmp_path):
        with ingest_dir(tmp_path) as directory:
            # Remove a unit from the corpus only: the index still
            # routes queries to it.
            directory.corpus.remove(0)
            findings = check_ingest_directory(directory)
            assert "SEG007" in codes(findings)

    def test_memtable_sealed_overlap_detected(self, tmp_path):
        with ingest_dir(tmp_path) as directory:
            sealed_id = directory.index.segments[0].global_ids[0]
            directory.index.memtable[sealed_id] = (
                directory.corpus.get(sealed_id)
            )
            findings = check_ingest_directory(directory)
            assert "SEG007" in codes(findings)

    def test_phantom_tombstone_detected(self, tmp_path):
        from repro.index.ingest import read_manifest, write_manifest

        with ingest_dir(tmp_path) as directory:
            manifest = read_manifest(directory.path)
            manifest.tombstones = [99999]
            manifest.generation += 1
            write_manifest(directory.path, manifest)
            directory._generation = manifest.generation
            findings = check_ingest_directory(directory)
            assert "SEG008" in codes(findings)
            # The forged id also breaks the next_doc_id bound.
            assert "SEG006" in codes(findings)

    def test_missing_manifest_detected(self, tmp_path):
        import os

        with ingest_dir(tmp_path) as directory:
            os.unlink(os.path.join(directory.path, "MANIFEST.json"))
            findings = check_ingest_directory(directory)
            assert "SEG006" in codes(findings)
            assert "no manifest" in findings[0].message

    def test_run_check_resolves_directory_path(self, tmp_path):
        from repro.analysis.runner import run_check

        ingest_dir(tmp_path, deletes=[1]).close()
        report = run_check(
            index=str(tmp_path), patterns=["clinton", "cat"]
        )
        assert report.ok
        assert "index invariants" in report.sections
        assert "plan soundness" in report.sections
