"""The Figure 12 `sigmod` outlier, reproduced mechanistically.

The paper observes one query degrading under the shortest-suffix rule.
The mechanism: the presuf shell drops a *rare* key (e.g. ``sigm``)
because another key (e.g. ``gm``) is its suffix; the planner's cover
for the query gram then falls back to the common suffix key, whose
postings list is near the usefulness threshold — candidates balloon
from sel(rare) to sel(common-suffix).

On the synthetic web the planted features are so distinctive that the
surviving suffix keys are equally selective, so Figure 12 shows no
degradation at default scale (EXPERIMENTS.md discusses this).  Here we
build a corpus with hand-controlled selectivities where the mechanism
provably fires, proving the code path reproduces the paper's outlier.
"""

import pytest

from repro import (
    FreeEngine,
    InMemoryCorpus,
    ScanEngine,
    build_multigram_index,
)

N = 100
C = 0.1


def degradation_corpus():
    """Selectivities (over 100 docs, c = 0.1):

    - ``sigm``: 2 docs (rare; minimal useful with useless prefixes)
    - ``gm`` without ``sigm``: 8 more docs -> sel(gm) = 0.10 (a key,
      right at the threshold; its prefix ``g`` is useless)
    - ``sig`` without ``sigm``: 15 docs -> prefixes s/si/sig useless
    - filler docs pad sel(g) and sel(s) above c
    """
    texts = []
    texts += ["xx sigmod conference xx"] * 2        # sigm + gm + sig docs
    texts += [f"gm unit {i}" for i in range(8)]     # gm-only docs
    texts += [f"sig unit {i}" for i in range(15)]   # sig-only docs
    texts += [f"gg unit {i}" for i in range(15)]    # keep 'g' useless
    while len(texts) < N:
        # Filler keeps every other character of "sigmod" ('o', 'd', 'i',
        # 's') common, so the shell cover cannot be rescued by rare
        # single-character keys.
        texts.append(f"dood floods said {len(texts)}")
    return InMemoryCorpus.from_texts(texts)


@pytest.fixture(scope="module")
def corpus():
    return degradation_corpus()


@pytest.fixture(scope="module")
def plain(corpus):
    return build_multigram_index(corpus, threshold=C, max_gram_len=6)


@pytest.fixture(scope="module")
def shell(corpus):
    return build_multigram_index(
        corpus, threshold=C, max_gram_len=6, presuf=True
    )


class TestMechanism:
    def test_plain_has_rare_key(self, plain):
        assert "sigm" in plain
        assert "gm" in plain

    def test_shell_dropped_rare_key(self, plain, shell):
        """m is a suffix of gm and sigm: the shell keeps only m."""
        assert "m" in plain and "m" in shell
        assert "sigm" not in shell
        assert "gm" not in shell

    def test_selectivity_gap(self, plain):
        assert plain.selectivity("sigm") == pytest.approx(0.02)
        assert plain.selectivity("m") == pytest.approx(0.10)

    def test_candidates_balloon_under_shell(self, corpus, plain, shell):
        """The observable Figure 12 effect: more candidates, same answer."""
        query = "sigmod"
        plain_engine = FreeEngine(corpus, plain)
        shell_engine = FreeEngine(corpus, shell)
        r_plain = plain_engine.search(query)
        r_shell = shell_engine.search(query)
        assert r_plain.n_candidates == 2
        assert r_shell.n_candidates == 10
        assert r_shell.io_cost > 2 * r_plain.io_cost

    def test_answers_never_change(self, corpus, plain, shell):
        query = "sigmod"
        truth = ScanEngine(corpus).search(query)
        for index in (plain, shell):
            report = FreeEngine(corpus, index).search(query)
            assert [(m.doc_id, m.span) for m in report.matches] == \
                [(m.doc_id, m.span) for m in truth.matches]
