"""Postings codec and merge-operation tests (unit + property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.postings import (
    PostingsList,
    decode_gaps,
    difference_sorted,
    encode_gaps,
    encode_varint,
    intersect_many,
    intersect_sorted,
    union_many,
)


class TestVarint:
    def test_small_values_one_byte(self):
        out = bytearray()
        encode_varint(0, out)
        encode_varint(127, out)
        assert len(out) == 2

    def test_large_values_multi_byte(self):
        out = bytearray()
        encode_varint(128, out)
        assert len(out) == 2
        out2 = bytearray()
        encode_varint(1 << 28, out2)
        assert len(out2) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())


class TestGapCodec:
    def test_roundtrip_simple(self):
        ids = [0, 1, 5, 100, 10_000]
        assert decode_gaps(encode_gaps(ids)) == ids

    def test_empty(self):
        assert decode_gaps(encode_gaps([])) == []

    def test_dense_run_is_one_byte_per_id(self):
        ids = list(range(1000))
        assert len(encode_gaps(ids)) == 1000

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            encode_gaps([3, 3])
        with pytest.raises(ValueError):
            encode_gaps([5, 2])

    def test_truncated_data_rejected(self):
        data = encode_gaps([1 << 20])
        with pytest.raises(ValueError):
            decode_gaps(data[:-1] + b"\x80")

    @settings(max_examples=200, deadline=None)
    @given(ids=st.lists(st.integers(0, 1 << 40), unique=True))
    def test_roundtrip_property(self, ids):
        ids = sorted(ids)
        assert decode_gaps(encode_gaps(ids)) == ids


class TestPostingsList:
    def test_from_ids_sorts_and_dedupes(self):
        plist = PostingsList.from_ids([5, 1, 5, 3])
        assert plist.ids() == [1, 3, 5]
        assert len(plist) == 3

    def test_from_sorted_fast_path(self):
        plist = PostingsList.from_sorted_ids([1, 2, 9])
        assert plist.ids() == [1, 2, 9]

    def test_contains(self):
        plist = PostingsList.from_ids([2, 4, 8])
        assert 4 in plist
        assert 5 not in plist

    def test_iter(self):
        assert list(PostingsList.from_ids([3, 1])) == [1, 3]

    def test_equality(self):
        assert PostingsList.from_ids([1, 2]) == PostingsList.from_ids([2, 1])
        assert PostingsList.from_ids([1]) != PostingsList.from_ids([2])

    def test_nbytes_compression(self):
        dense = PostingsList.from_sorted_ids(list(range(500)))
        assert dense.nbytes == 500  # 1 byte per gap of 0


class TestMerges:
    def test_intersect_basic(self):
        assert intersect_sorted([1, 3, 5], [3, 5, 7]) == [3, 5]

    def test_intersect_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_intersect_empty(self):
        assert intersect_sorted([], [1]) == []

    def test_intersect_skewed_sizes(self):
        big = list(range(0, 10_000, 2))
        small = [4, 5, 9_998]
        assert intersect_sorted(small, big) == [4, 9_998]
        assert intersect_sorted(big, small) == [4, 9_998]

    def test_intersect_many_smallest_first(self):
        lists = [list(range(100)), [5, 50], list(range(0, 100, 5))]
        assert intersect_many(lists) == [5, 50]

    def test_intersect_many_empty_input(self):
        assert intersect_many([]) == []

    def test_union_basic(self):
        assert union_many([[1, 3], [2, 3], [4]]) == [1, 2, 3, 4]

    def test_union_single(self):
        assert union_many([[1, 2]]) == [1, 2]

    def test_union_empty(self):
        assert union_many([]) == []
        assert union_many([[], []]) == []

    def test_difference(self):
        assert difference_sorted([1, 2, 3, 4], [2, 4]) == [1, 3]
        assert difference_sorted([1, 2], []) == [1, 2]

    @settings(max_examples=200, deadline=None)
    @given(
        a=st.lists(st.integers(0, 200), unique=True),
        b=st.lists(st.integers(0, 200), unique=True),
    )
    def test_intersect_equals_set_semantics(self, a, b):
        a, b = sorted(a), sorted(b)
        assert intersect_sorted(a, b) == sorted(set(a) & set(b))

    @settings(max_examples=200, deadline=None)
    @given(
        lists=st.lists(
            st.lists(st.integers(0, 100), unique=True).map(sorted),
            max_size=5,
        )
    )
    def test_union_equals_set_semantics(self, lists):
        expected = sorted(set().union(*[set(l) for l in lists]) if lists
                          else set())
        assert union_many(lists) == expected

    @settings(max_examples=200, deadline=None)
    @given(
        lists=st.lists(
            st.lists(st.integers(0, 60), unique=True).map(sorted),
            min_size=1,
            max_size=4,
        )
    )
    def test_intersect_many_equals_set_semantics(self, lists):
        expected = set(lists[0])
        for lst in lists[1:]:
            expected &= set(lst)
        assert intersect_many(lists) == sorted(expected)
