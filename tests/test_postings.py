"""Postings codec and merge-operation tests (unit + property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.postings import (
    BLOCK_SIZE,
    BlockCursor,
    BlockedPostingsList,
    ListCursor,
    PostingsList,
    cursor_for,
    decode_gaps,
    difference_sorted,
    encode_blocks,
    encode_gaps,
    encode_varint,
    intersect_cursors,
    intersect_many,
    intersect_sorted,
    union_many,
    varint_len,
)
from repro.metrics import QueryMetrics


class TestVarint:
    def test_small_values_one_byte(self):
        out = bytearray()
        encode_varint(0, out)
        encode_varint(127, out)
        assert len(out) == 2

    def test_large_values_multi_byte(self):
        out = bytearray()
        encode_varint(128, out)
        assert len(out) == 2
        out2 = bytearray()
        encode_varint(1 << 28, out2)
        assert len(out2) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())


#: Edge-case id sequences every codec (flat v1 stream, blocked v2
#: payload) must round-trip identically: empty, single id, ids past
#: 2^35 (beyond any 5-byte varint), and a maximal single gap.
EDGE_ID_SETS = [
    [],
    [0],
    [7],
    [1 << 35],
    [(1 << 40) + 3],
    [0, (1 << 35) + 1],
    [(1 << 40) - 2, (1 << 40) - 1],
    list(range(0, 700, 7)) + [1 << 36, (1 << 36) + 1],
]


class TestVarintEdgeCases:
    @pytest.mark.parametrize("ids", EDGE_ID_SETS)
    def test_flat_codec_roundtrip(self, ids):
        assert decode_gaps(encode_gaps(ids)) == ids

    @pytest.mark.parametrize("ids", EDGE_ID_SETS)
    @pytest.mark.parametrize("block_size", [1, 3, BLOCK_SIZE])
    def test_blocked_codec_roundtrip(self, ids, block_size):
        plist = BlockedPostingsList.from_ids(ids, block_size=block_size)
        assert plist.ids() == ids
        assert len(plist) == len(ids)

    @pytest.mark.parametrize("ids", EDGE_ID_SETS)
    def test_blocked_equals_flat_twin(self, ids):
        # nbytes / raw / equality all report the flat v1 encoding.
        flat = PostingsList.from_ids(ids)
        blocked = BlockedPostingsList.from_ids(ids, block_size=3)
        assert blocked == flat
        assert blocked.nbytes == flat.nbytes
        assert blocked.raw == flat.raw

    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, (1 << 35) - 1, 1 << 35, 1 << 63]
    )
    def test_varint_len_matches_encoding(self, value):
        out = bytearray()
        encode_varint(value, out)
        assert varint_len(value) == len(out)


class TestGapCodec:
    def test_roundtrip_simple(self):
        ids = [0, 1, 5, 100, 10_000]
        assert decode_gaps(encode_gaps(ids)) == ids

    def test_empty(self):
        assert decode_gaps(encode_gaps([])) == []

    def test_dense_run_is_one_byte_per_id(self):
        ids = list(range(1000))
        assert len(encode_gaps(ids)) == 1000

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            encode_gaps([3, 3])
        with pytest.raises(ValueError):
            encode_gaps([5, 2])

    def test_truncated_data_rejected(self):
        data = encode_gaps([1 << 20])
        with pytest.raises(ValueError):
            decode_gaps(data[:-1] + b"\x80")

    @settings(max_examples=200, deadline=None)
    @given(ids=st.lists(st.integers(0, 1 << 40), unique=True))
    def test_roundtrip_property(self, ids):
        ids = sorted(ids)
        assert decode_gaps(encode_gaps(ids)) == ids


class TestPostingsList:
    def test_from_ids_sorts_and_dedupes(self):
        plist = PostingsList.from_ids([5, 1, 5, 3])
        assert plist.ids() == [1, 3, 5]
        assert len(plist) == 3

    def test_from_sorted_fast_path(self):
        plist = PostingsList.from_sorted_ids([1, 2, 9])
        assert plist.ids() == [1, 2, 9]

    def test_contains(self):
        plist = PostingsList.from_ids([2, 4, 8])
        assert 4 in plist
        assert 5 not in plist

    def test_iter(self):
        assert list(PostingsList.from_ids([3, 1])) == [1, 3]

    def test_equality(self):
        assert PostingsList.from_ids([1, 2]) == PostingsList.from_ids([2, 1])
        assert PostingsList.from_ids([1]) != PostingsList.from_ids([2])

    def test_nbytes_compression(self):
        dense = PostingsList.from_sorted_ids(list(range(500)))
        assert dense.nbytes == 500  # 1 byte per gap of 0


class TestMerges:
    def test_intersect_basic(self):
        assert intersect_sorted([1, 3, 5], [3, 5, 7]) == [3, 5]

    def test_intersect_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_intersect_empty(self):
        assert intersect_sorted([], [1]) == []

    def test_intersect_skewed_sizes(self):
        big = list(range(0, 10_000, 2))
        small = [4, 5, 9_998]
        assert intersect_sorted(small, big) == [4, 9_998]
        assert intersect_sorted(big, small) == [4, 9_998]

    def test_intersect_many_smallest_first(self):
        lists = [list(range(100)), [5, 50], list(range(0, 100, 5))]
        assert intersect_many(lists) == [5, 50]

    def test_intersect_many_empty_input(self):
        assert intersect_many([]) == []

    def test_union_basic(self):
        assert union_many([[1, 3], [2, 3], [4]]) == [1, 2, 3, 4]

    def test_union_single(self):
        assert union_many([[1, 2]]) == [1, 2]

    def test_union_empty(self):
        assert union_many([]) == []
        assert union_many([[], []]) == []

    def test_difference(self):
        assert difference_sorted([1, 2, 3, 4], [2, 4]) == [1, 3]
        assert difference_sorted([1, 2], []) == [1, 2]

    @settings(max_examples=200, deadline=None)
    @given(
        a=st.lists(st.integers(0, 200), unique=True),
        b=st.lists(st.integers(0, 200), unique=True),
    )
    def test_intersect_equals_set_semantics(self, a, b):
        a, b = sorted(a), sorted(b)
        assert intersect_sorted(a, b) == sorted(set(a) & set(b))

    @settings(max_examples=200, deadline=None)
    @given(
        lists=st.lists(
            st.lists(st.integers(0, 100), unique=True).map(sorted),
            max_size=5,
        )
    )
    def test_union_equals_set_semantics(self, lists):
        expected = sorted(set().union(*[set(l) for l in lists]) if lists
                          else set())
        assert union_many(lists) == expected

    @settings(max_examples=200, deadline=None)
    @given(
        lists=st.lists(
            st.lists(st.integers(0, 60), unique=True).map(sorted),
            min_size=1,
            max_size=4,
        )
    )
    def test_intersect_many_equals_set_semantics(self, lists):
        expected = set(lists[0])
        for lst in lists[1:]:
            expected &= set(lst)
        assert intersect_many(lists) == sorted(expected)

    def test_intersect_many_single_list_is_a_fresh_copy(self):
        # The 1-list fast path returns a fresh list, mirroring
        # union_many: callers may mutate the result without corrupting
        # the (possibly cached) input postings.
        only = [1, 2, 3]
        result = intersect_many([only])
        assert result == only
        assert result is not only

    def test_union_many_single_list_is_a_fresh_copy(self):
        only = [1, 2, 3]
        result = union_many([only])
        assert result == only
        assert result is not only

    def test_union_many_limit_is_sorted_prefix(self):
        lists = [[1, 5, 9], [2, 5, 10], [3]]
        full = union_many(lists)
        for limit in range(len(full) + 2):
            assert union_many(lists, limit=limit) == full[:limit]


class TestEncodeBlocks:
    def test_block_shapes(self):
        ids = list(range(0, 100, 2))  # 50 ids
        blocks, payload = encode_blocks(ids, block_size=16)
        assert [n for _f, n, _b in blocks] == [16, 16, 16, 2]
        assert [f for f, _n, _b in blocks] == [0, 32, 64, 96]
        assert sum(b for _f, _n, b in blocks) == len(payload)

    def test_blocks_decode_independently(self):
        ids = list(range(10, 1000, 3))
        blocks, payload = encode_blocks(ids, block_size=7)
        offset = 0
        decoded = []
        for first, _n, byte_len in blocks:
            body = payload[offset : offset + byte_len]
            decoded.append(first)
            decoded.extend(decode_gaps(body, previous=first))
            offset += byte_len
        assert decoded == ids

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            encode_blocks([3, 3], block_size=4)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            encode_blocks([1], block_size=0)


class TestBlockedPostingsList:
    def test_from_flat_wraps_v1_stream(self):
        ids = [4, 9, 100]
        data = encode_gaps(ids)
        plist = BlockedPostingsList.from_flat(data, len(ids))
        assert not plist.has_skip_table
        assert plist.n_blocks == 1
        assert plist.block_table == []
        assert plist.ids() == ids
        assert plist.blocked_nbytes == len(data)
        assert plist.raw == data

    def test_flat_count_mismatch_raises(self):
        data = encode_gaps([1, 2, 3])
        plist = BlockedPostingsList.from_flat(data, 99)
        with pytest.raises(ValueError):
            plist.block_ids(0)

    def test_block_count_mismatch_raises(self):
        good = BlockedPostingsList.from_ids(range(20), block_size=8)
        bad = BlockedPostingsList(
            good._buf,
            good._first_ids,
            [8, 8, 99],  # lies about the last block
            good._block_bounds,
            20,
            good.nbytes,
        )
        with pytest.raises(ValueError):
            bad.block_ids(2)

    def test_block_decode_charges_metrics_once(self):
        plist = BlockedPostingsList.from_ids(range(30), block_size=10)
        metrics = QueryMetrics()
        first = plist.block_ids(1, metrics)
        again = plist.block_ids(1, metrics)  # memo hit: no new charge
        assert first is again
        assert metrics.postings_blocks_decoded == 1
        assert metrics.postings_entries_decoded == 10
        assert metrics.postings_bytes_decoded > 0


class TestCursors:
    def test_list_cursor_next_geq(self):
        cursor = ListCursor([2, 4, 8])
        assert cursor.next_geq(0) == 2
        assert cursor.next_geq(4) == 4
        assert cursor.next_geq(5) == 8
        assert cursor.next_geq(9) is None

    def test_block_cursor_header_answers_without_decode(self):
        plist = BlockedPostingsList.from_ids(range(0, 400, 2),
                                             block_size=16)
        metrics = QueryMetrics()
        cursor = BlockCursor(plist, metrics)
        # 32 is block 1's first id: the skip-table header alone
        # answers, leaving every block encoded.
        assert cursor.next_geq(32) == 32
        assert metrics.postings_blocks_decoded == 0
        assert metrics.postings_blocks_skipped == 1

    def test_block_cursor_skips_blocks(self):
        plist = BlockedPostingsList.from_ids(range(100), block_size=4)
        metrics = QueryMetrics()
        cursor = BlockCursor(plist, metrics)
        assert cursor.next_geq(81) == 81
        # Landed in one block (81 is not a block header), having
        # skipped straight over the earlier ones.
        assert metrics.postings_blocks_decoded == 1
        assert metrics.postings_blocks_skipped > 0

    def test_block_cursor_to_list_resumes_mid_block(self):
        ids = list(range(0, 90, 3))
        plist = BlockedPostingsList.from_ids(ids, block_size=7)
        cursor = BlockCursor(plist)
        assert cursor.next_geq(40) == 42
        assert cursor.to_list() == [i for i in ids if i >= 42]
        assert cursor.to_list() == []

    def test_cursor_for_picks_by_layout(self):
        blocked = BlockedPostingsList.from_ids([1, 2], block_size=2)
        flat = PostingsList.from_ids([1, 2])
        assert isinstance(cursor_for(blocked), BlockCursor)
        assert isinstance(cursor_for(flat), ListCursor)

    @settings(max_examples=200, deadline=None)
    @given(
        lists=st.lists(
            st.lists(st.integers(0, 120), unique=True).map(sorted),
            min_size=1,
            max_size=4,
        ),
        block_size=st.integers(1, 9),
    )
    def test_intersect_cursors_equals_set_semantics(
        self, lists, block_size
    ):
        expected = set(lists[0])
        for lst in lists[1:]:
            expected &= set(lst)
        cursors = [
            BlockCursor(
                BlockedPostingsList.from_ids(lst, block_size=block_size)
            )
            for lst in lists
        ]
        assert intersect_cursors(cursors) == sorted(expected)

    @settings(max_examples=100, deadline=None)
    @given(
        lists=st.lists(
            st.lists(st.integers(0, 60), unique=True).map(sorted),
            min_size=2,
            max_size=4,
        ),
        limit=st.integers(0, 8),
    )
    def test_intersect_cursors_limit_is_prefix(self, lists, limit):
        expected = set(lists[0])
        for lst in lists[1:]:
            expected &= set(lst)
        cursors = [ListCursor(lst) for lst in lists]
        result = intersect_cursors(cursors, limit=limit)
        assert result == sorted(expected)[:limit]

    def test_intersect_cursors_mixed_layouts(self):
        a = BlockedPostingsList.from_ids(range(0, 300, 2), block_size=8)
        b = list(range(0, 300, 3))
        result = intersect_cursors([BlockCursor(a), ListCursor(b)])
        assert result == list(range(0, 300, 6))
