"""Differential soundness: FREEIDX1 and FREEIDX2 answer identically.

The same corpus is indexed once, serialized in both image formats, and
loaded back; for the whole benchmark query set the two images must
produce **byte-identical candidate lists** and identical
``QueryMetrics`` lookup records — the v2 layout (lazy directory,
block-skip decode) may change *when* bytes are decoded, never *what*
the executor returns.  Checked unsharded and sharded, and under every
available postings-kernel backend: the vectorized numpy kernel must be
indistinguishable from the python reference in candidate output.
"""

import pytest

from repro.bench.queries import BENCHMARK_QUERIES
from repro.corpus.synthesis import build_corpus
from repro.engine.executor import execute_plan, execute_plan_sharded
from repro.engine.free import FreeEngine
from repro.index.builder import build_multigram_index
from repro.index.kernels import numpy_available, resolve_kernel
from repro.index.serialize import (
    load_any_index,
    load_index,
    save_index,
    save_sharded_index,
)
from repro.index.sharded import ShardedIndex
from repro.metrics import QueryMetrics
from repro.plan.logical import LogicalPlan
from repro.plan.physical import CoverPolicy, PhysicalPlan

KERNELS = ["python", "numpy"]


@pytest.fixture(params=KERNELS)
def kernel(request):
    """A fresh kernel instance per test (isolated decoded-block cache)."""
    if request.param == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    return resolve_kernel(request.param)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(n_pages=60, seed=3)


@pytest.fixture(scope="module")
def images(corpus, tmp_path_factory):
    """(eager v1 index, mapped v2 index) over the same build."""
    index = build_multigram_index(corpus, threshold=0.1, max_gram_len=8)
    root = tmp_path_factory.mktemp("diff")
    v1, v2 = str(root / "v1.idx"), str(root / "v2.idx")
    save_index(index, v1, version=1)
    save_index(index, v2, version=2)
    return load_index(v1), load_index(v2)


@pytest.fixture(scope="module")
def sharded_images(corpus, tmp_path_factory):
    sharded = ShardedIndex.build(corpus, 3, threshold=0.1)
    root = tmp_path_factory.mktemp("diff-sharded")
    v1, v2 = str(root / "v1.fsi"), str(root / "v2.fsi")
    save_sharded_index(sharded, v1, version=1)
    save_sharded_index(sharded, v2, version=2)
    return load_any_index(v1), load_any_index(v2)


def _candidates(index, pattern, kernel=None):
    metrics = QueryMetrics()
    logical = LogicalPlan.from_pattern(pattern)
    physical = PhysicalPlan.compile(logical, index, CoverPolicy("all"))
    if physical.is_full_scan:
        return None, metrics
    return (
        execute_plan(physical, index, None, metrics, kernel=kernel),
        metrics,
    )


def _lookup_counts(metrics):
    return [(r.key, r.n_ids) for r in metrics.lookups]


@pytest.mark.parametrize("name", sorted(BENCHMARK_QUERIES))
def test_candidates_byte_identical(images, name, kernel):
    eager, mapped = images
    pattern = BENCHMARK_QUERIES[name]
    c1, m1 = _candidates(eager, pattern, kernel)
    c2, m2 = _candidates(mapped, pattern, kernel)
    assert c1 == c2
    assert _lookup_counts(m1) == _lookup_counts(m2)


@pytest.mark.parametrize("name", sorted(BENCHMARK_QUERIES))
def test_sharded_candidates_byte_identical(sharded_images, name, kernel):
    v1, v2 = sharded_images
    logical = LogicalPlan.from_pattern(BENCHMARK_QUERIES[name])
    m1, m2 = QueryMetrics(), QueryMetrics()
    c1 = execute_plan_sharded(logical, v1, "all", metrics=m1, kernel=kernel)
    c2 = execute_plan_sharded(logical, v2, "all", metrics=m2, kernel=kernel)
    assert c1 == c2
    assert _lookup_counts(m1) == _lookup_counts(m2)


@pytest.mark.parametrize("name", sorted(BENCHMARK_QUERIES))
def test_candidates_identical_across_kernels(images, name):
    # Cross-backend differential: for each image format, the numpy
    # kernel must return exactly the python kernel's candidate list.
    if not numpy_available():
        pytest.skip("numpy not installed")
    pattern = BENCHMARK_QUERIES[name]
    for index in images:
        py, _ = _candidates(index, pattern, resolve_kernel("python"))
        np_, _ = _candidates(index, pattern, resolve_kernel("numpy"))
        assert py == np_


def test_first_k_prefix_identical(images, kernel):
    # The first_k upper-bound probe must truncate both formats to the
    # same sorted prefix (the streaming kernel's early exit).
    eager, mapped = images
    for pattern in BENCHMARK_QUERIES.values():
        logical = LogicalPlan.from_pattern(pattern)
        for index_pair in [(eager, mapped)]:
            results = []
            for index in index_pair:
                physical = PhysicalPlan.compile(
                    logical, index, CoverPolicy("all")
                )
                if physical.is_full_scan:
                    results.append(None)
                else:
                    results.append(
                        execute_plan(physical, index, None, None,
                                     first_k=5, kernel=kernel)
                    )
            assert results[0] == results[1]


def test_engine_reports_identical(corpus, images):
    eager, mapped = images
    engines = [FreeEngine(corpus, index) for index in images]
    for pattern in BENCHMARK_QUERIES.values():
        r1 = engines[0].search(pattern, collect_matches=True)
        r2 = engines[1].search(pattern, collect_matches=True)
        assert r1.n_candidates == r2.n_candidates
        assert r1.n_matches == r2.n_matches
        assert [m.doc_id for m in r1.matches] == \
            [m.doc_id for m in r2.matches]
