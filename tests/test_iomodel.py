"""DiskModel accounting tests."""

import pytest

from repro.iomodel.diskmodel import DiskModel


class TestDiskModel:
    def test_sequential_charge(self):
        disk = DiskModel()
        disk.charge_sequential(1000)
        assert disk.total_cost == 1000.0

    def test_random_charge_multiplied(self):
        disk = DiskModel(random_multiplier=10.0)
        disk.charge_random(100)
        assert disk.total_cost == 1000.0
        assert disk.random_accesses == 1

    def test_postings_charge(self):
        disk = DiskModel(posting_cost_chars=4.0)
        disk.charge_postings(25)
        assert disk.total_cost == 100.0

    def test_mixed(self):
        disk = DiskModel()
        disk.charge_sequential(10)
        disk.charge_random(10)
        disk.charge_postings(10)
        assert disk.total_cost == 10 + 100 + 40

    def test_reset(self):
        disk = DiskModel()
        disk.charge_sequential(5)
        disk.charge_random(5)
        disk.reset()
        assert disk.total_cost == 0.0
        assert disk.random_accesses == 0

    def test_snapshot(self):
        disk = DiskModel()
        disk.charge_random(3)
        snap = disk.snapshot()
        assert snap["random_chars"] == 3
        assert snap["random_accesses"] == 1
        assert snap["total_cost"] == disk.total_cost

    def test_threshold_rationale(self):
        """Section 3.1: with a 10x random penalty, reading 10% of units
        randomly costs the same as scanning everything."""
        disk = DiskModel(random_multiplier=10.0)
        corpus_chars = 100_000
        fraction = 0.1
        disk.charge_random(int(corpus_chars * fraction))
        random_cost = disk.total_cost
        disk.reset()
        disk.charge_sequential(corpus_chars)
        scan_cost = disk.total_cost
        assert random_cost == pytest.approx(scan_cost)
