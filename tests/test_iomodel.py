"""DiskModel accounting tests."""

import pytest

from repro.corpus.document import DataUnit
from repro.corpus.store import InMemoryCorpus
from repro.engine.free import FreeEngine
from repro.engine.scan import ScanEngine
from repro.index.builder import build_multigram_index
from repro.iomodel.diskmodel import DiskModel


class TestDiskModel:
    def test_sequential_charge(self):
        disk = DiskModel()
        disk.charge_sequential(1000)
        assert disk.total_cost == 1000.0

    def test_random_charge_multiplied(self):
        disk = DiskModel(random_multiplier=10.0)
        disk.charge_random(100)
        assert disk.total_cost == 1000.0
        assert disk.random_accesses == 1

    def test_postings_charge(self):
        disk = DiskModel(posting_cost_chars=4.0)
        disk.charge_postings(25)
        assert disk.total_cost == 100.0

    def test_mixed(self):
        disk = DiskModel()
        disk.charge_sequential(10)
        disk.charge_random(10)
        disk.charge_postings(10)
        assert disk.total_cost == 10 + 100 + 40

    def test_reset(self):
        disk = DiskModel()
        disk.charge_sequential(5)
        disk.charge_random(5)
        disk.reset()
        assert disk.total_cost == 0.0
        assert disk.random_accesses == 0

    def test_snapshot(self):
        disk = DiskModel()
        disk.charge_random(3)
        snap = disk.snapshot()
        assert snap["random_chars"] == 3
        assert snap["random_accesses"] == 1
        assert snap["total_cost"] == disk.total_cost

    def test_threshold_rationale(self):
        """Section 3.1: with a 10x random penalty, reading 10% of units
        randomly costs the same as scanning everything."""
        disk = DiskModel(random_multiplier=10.0)
        corpus_chars = 100_000
        fraction = 0.1
        disk.charge_random(int(corpus_chars * fraction))
        random_cost = disk.total_cost
        disk.reset()
        disk.charge_sequential(corpus_chars)
        scan_cost = disk.total_cost
        assert random_cost == pytest.approx(scan_cost)


#: Fixture corpus for end-to-end accounting: the gram 'q' occurs in
#: exactly docs 1 and 3 (selectivity 0.5), so with threshold c = 0.5 it
#: is a minimal useful gram and the only lookup a 'qq' query needs.
TEXTS = [
    "alpha beta",
    "qq marker one",
    "gamma delta",
    "another qq here",
]


def _fixture_corpus():
    return InMemoryCorpus(
        [DataUnit(i, text) for i, text in enumerate(TEXTS)]
    )


def _fixture_engine():
    corpus = _fixture_corpus()
    index = build_multigram_index(
        corpus, threshold=0.5, max_gram_len=4
    )
    return FreeEngine(corpus, index, disk=DiskModel())


class TestDiskAccountingThroughQueries:
    """Counters after real queries, against hand-computed values."""

    def test_scan_reads_whole_corpus_sequentially(self):
        engine = ScanEngine(_fixture_corpus(), disk=DiskModel())
        engine.search("qq", collect_matches=False)
        assert engine.disk.sequential_chars == sum(
            len(text) for text in TEXTS
        )
        assert engine.disk.random_accesses == 0
        assert engine.disk.random_chars == 0
        assert engine.disk.postings_read == 0

    def test_indexed_query_hand_computed(self):
        engine = _fixture_engine()
        assert "q" in set(engine.index.keys())
        report = engine.search("qq", collect_matches=False)
        disk = engine.disk
        # LOOKUP 'q' -> postings [1, 3]; both units fetched randomly.
        assert report.n_candidates == 2
        assert disk.postings_read == 2
        assert disk.random_accesses == 2
        assert disk.random_chars == len(TEXTS[1]) + len(TEXTS[3])
        assert disk.sequential_chars == 0
        assert disk.total_cost == pytest.approx(
            disk.random_chars * disk.random_multiplier
            + disk.postings_read * disk.posting_cost_chars
        )
        assert report.io_cost == pytest.approx(disk.total_cost)

    def test_postings_fetch_spans_agree_with_disk(self):
        engine = _fixture_engine()
        report = engine.search("qq", collect_matches=False, trace=True)
        fetches = report.trace.find("postings_fetch")
        assert fetches, "indexed query must record postings_fetch spans"
        assert sum(
            span.attrs["n_ids"] for span in fetches
        ) == engine.disk.postings_read
        # The per-query mirror carries the same charge.
        assert report.metrics.postings_charged == (
            engine.disk.postings_read
        )

    def test_span_counts_accumulate_across_queries(self):
        engine = _fixture_engine()
        charged = 0
        for _ in range(3):
            before = engine.disk.postings_read
            report = engine.search(
                "qq", collect_matches=False, trace=True
            )
            fetched = sum(
                span.attrs["n_ids"]
                for span in report.trace.find("postings_fetch")
            )
            assert fetched == engine.disk.postings_read - before
            charged += fetched
        assert engine.disk.postings_read == charged
