"""FREEIDX2 images: mmap load, the lazy directory, `free convert`."""

import os

import pytest

from repro.corpus.synthesis import build_corpus
from repro.errors import SerializationError
from repro.index.builder import build_multigram_index
from repro.index.directory import KeyTrie
from repro.index.multigram import GramIndex
from repro.index.postings import BlockedPostingsList, PostingsList
from repro.index.serialize import (
    MappedGramIndex,
    _write_index_stream,
    convert_index,
    load_any_index,
    load_index,
    save_index,
    save_sharded_index,
)
from repro.index.sharded import ShardedIndex


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(n_pages=40, seed=11)


@pytest.fixture(scope="module")
def built(corpus):
    return build_multigram_index(corpus, threshold=0.2, max_gram_len=6)


@pytest.fixture(scope="module")
def mapped(built, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("v2") / "image.idx")
    save_index(built, path, version=2)
    return load_index(path)


def small_index():
    postings = {
        "abc": PostingsList.from_ids([0, 2]),
        "ab!": PostingsList.from_ids(range(500)),  # multi-block list
        "xy": PostingsList.from_ids([1]),
        "q": PostingsList.from_ids([]),
    }
    return GramIndex(postings, kind="multigram", n_docs=500,
                     threshold=0.5, max_gram_len=5)


class TestMappedDirectory:
    def test_load_returns_mapped_index(self, built, mapped):
        assert isinstance(mapped, MappedGramIndex)
        assert len(mapped) == len(built)
        assert mapped.kind == built.kind
        assert mapped.n_docs == built.n_docs
        assert mapped.threshold == built.threshold
        assert mapped.max_gram_len == built.max_gram_len

    def test_every_lookup_matches_builder(self, built, mapped):
        for key in built.keys():
            assert mapped.lookup(key).ids() == built.lookup(key).ids()

    def test_contains_and_missing_key(self, built, mapped):
        some_key = next(iter(built.keys()))
        assert some_key in mapped
        assert "\x00never-a-key\x00" not in mapped
        with pytest.raises(KeyError):
            mapped.lookup("\x00never-a-key\x00")

    def test_lookup_is_memoised(self, mapped):
        key = next(iter(mapped.keys()))
        assert mapped.lookup(key) is mapped.lookup(key)

    def test_keys_iterate_in_byte_order(self, built, mapped):
        keys = list(mapped.keys())
        assert keys == sorted(built.keys(), key=lambda k: k.encode())
        assert len(keys) == len(set(keys))

    def test_items_walk_whole_directory(self, built, mapped):
        items = dict(mapped.items())
        assert set(items) == set(built.keys())
        for key, plist in items.items():
            assert len(plist) == len(built.lookup(key))

    def test_covering_substrings_matches_trie(self, built, mapped):
        trie = KeyTrie.from_keys(built.keys())
        keys = sorted(built.keys())
        probes = [
            keys[0] + keys[-1],
            keys[len(keys) // 2] * 2,
            "the free engine indexes multigrams",
            "zzzz",
            "",
        ]
        for gram in probes:
            assert mapped.covering_substrings(gram) == \
                trie.substrings_of(gram)

    def test_selectivity(self, built, mapped):
        key = next(iter(built.keys()))
        assert mapped.selectivity(key) == built.selectivity(key)
        assert mapped.selectivity("\x00nope") is None

    def test_stats_materialize_lazily(self, built, mapped):
        stats = mapped.stats
        assert stats.n_keys == built.stats.n_keys
        assert stats.n_postings == built.stats.n_postings
        assert stats.postings_bytes == built.stats.postings_bytes
        assert stats.corpus_chars == built.stats.corpus_chars

    def test_prefix_free_check_runs(self, built, mapped):
        assert mapped.is_prefix_free() == built.is_prefix_free()


class TestV2Images:
    def test_long_lists_round_trip_blocked(self, tmp_path):
        index = small_index()
        path = str(tmp_path / "blocks.idx")
        save_index(index, path, version=2)
        loaded = load_index(path)
        plist = loaded.lookup("ab!")
        assert isinstance(plist, BlockedPostingsList)
        assert plist.has_skip_table
        assert plist.n_blocks > 1
        assert plist.ids() == list(range(500))
        # Short lists take the flat form: no skip table at all.
        assert not loaded.lookup("abc").has_skip_table
        assert loaded.lookup("q").ids() == []

    def test_magic_dispatch(self, tmp_path):
        index = small_index()
        v1 = str(tmp_path / "a.idx")
        v2 = str(tmp_path / "b.idx")
        save_index(index, v1, version=1)
        save_index(index, v2, version=2)
        assert not isinstance(load_index(v1), MappedGramIndex)
        assert isinstance(load_index(v2), MappedGramIndex)
        assert isinstance(load_any_index(v2), MappedGramIndex)

    def test_bad_version_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_index(small_index(), str(tmp_path / "x.idx"), version=3)

    def test_empty_index_round_trip(self, tmp_path):
        path = str(tmp_path / "empty.idx")
        save_index(GramIndex({}, "multigram", 0), path, version=2)
        loaded = load_index(path)
        assert len(loaded) == 0
        assert list(loaded.keys()) == []
        assert loaded.covering_substrings("anything") == []

    def test_any_truncation_fails_clean(self, tmp_path):
        path = str(tmp_path / "t.idx")
        save_index(small_index(), path, version=2)
        data = open(path, "rb").read()
        cut_path = str(tmp_path / "cut.idx")
        # Every prefix must be rejected at load time — the O(1) header
        # checks prove completeness without parsing any entry.
        for cut in range(0, len(data), max(1, len(data) // 64)):
            with open(cut_path, "wb") as out:
                out.write(data[:cut])
            with pytest.raises(SerializationError):
                load_index(cut_path)

    def test_trailing_garbage_fails_clean(self, tmp_path):
        path = str(tmp_path / "g.idx")
        save_index(small_index(), path, version=2)
        with open(path, "ab") as out:
            out.write(b"\x00\x00junk")
        with pytest.raises(SerializationError):
            load_index(path)


class TestConvert:
    def test_round_trip_is_byte_identical(self, built, tmp_path):
        v1 = str(tmp_path / "v1.idx")
        v2 = str(tmp_path / "v2.idx")
        back = str(tmp_path / "back.idx")
        save_index(built, v1, version=1)
        convert_index(v1, v2, version=2)
        convert_index(v2, back, version=1)
        assert open(v1, "rb").read() == open(back, "rb").read()

    def test_converted_lookups_identical(self, built, tmp_path):
        v1 = str(tmp_path / "v1.idx")
        v2 = str(tmp_path / "v2.idx")
        save_index(built, v1, version=1)
        convert_index(v1, v2, version=2)
        eager, lazy = load_index(v1), load_index(v2)
        for key in eager.keys():
            assert lazy.lookup(key).ids() == eager.lookup(key).ids()

    def test_convert_sharded_image(self, corpus, tmp_path):
        sharded = ShardedIndex.build(corpus, 3, threshold=0.2)
        v2 = str(tmp_path / "s2.idx")
        v1 = str(tmp_path / "s1.idx")
        save_sharded_index(sharded, v2, version=2)
        convert_index(v2, v1, version=1)
        a, b = load_any_index(v2), load_any_index(v1)
        assert isinstance(a, ShardedIndex)
        assert isinstance(b, ShardedIndex)
        for ordinal in range(a.n_shards):
            left = a.shards[ordinal].index
            right = b.shards[ordinal].index
            assert isinstance(left, MappedGramIndex)
            assert not isinstance(right, MappedGramIndex)
            for key in right.keys():
                assert left.lookup(key).ids() == right.lookup(key).ids()


class TestShardedImages:
    def test_mixed_version_shards_load(self, corpus, tmp_path):
        # A partially-migrated image: one shard stream per version.
        sharded = ShardedIndex.build(corpus, 2, threshold=0.2)
        path = str(tmp_path / "mixed.idx")
        save_sharded_index(sharded, path, version=1)
        # Rewrite shard streams by hand: shard 0 as v1, shard 1 as v2.
        import json
        import struct

        meta = {
            "n_shards": sharded.n_shards,
            "n_docs": sharded.n_docs,
            "doc_ranges": [list(r) for r in sharded.doc_ranges()],
        }
        meta_bytes = json.dumps(meta).encode("utf-8")
        with open(path, "wb") as out:
            out.write(b"FREESHRD")
            out.write(struct.pack("<I", len(meta_bytes)))
            out.write(meta_bytes)
            _write_index_stream(out, sharded.shards[0].index, 1)
            _write_index_stream(out, sharded.shards[1].index, 2)
        loaded = load_any_index(path)
        assert isinstance(loaded, ShardedIndex)
        assert not isinstance(loaded.shards[0].index, MappedGramIndex)
        assert isinstance(loaded.shards[1].index, MappedGramIndex)
        for ordinal in (0, 1):
            original = sharded.shards[ordinal].index
            reread = loaded.shards[ordinal].index
            for key in original.keys():
                assert reread.lookup(key).ids() == \
                    original.lookup(key).ids()

    def test_v2_sharded_truncation_fails_clean(self, corpus, tmp_path):
        sharded = ShardedIndex.build(corpus, 2, threshold=0.2)
        path = str(tmp_path / "s.idx")
        save_sharded_index(sharded, path, version=2)
        data = open(path, "rb").read()
        cut = str(tmp_path / "cut.idx")
        with open(cut, "wb") as out:
            out.write(data[: len(data) - 7])
        with pytest.raises(SerializationError):
            load_any_index(cut)

    def test_image_sizes_recorded(self, built, tmp_path):
        v1 = str(tmp_path / "v1.idx")
        v2 = str(tmp_path / "v2.idx")
        save_index(built, v1, version=1)
        save_index(built, v2, version=2)
        assert os.path.getsize(v1) > 0
        assert os.path.getsize(v2) > 0
