"""KeyTrie tests: membership, substring cover queries, prefix-freeness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.directory import KeyTrie


def trie_of(*keys):
    trie = KeyTrie()
    for key in keys:
        trie.insert(key)
    return trie


class TestMembership:
    def test_insert_and_contains(self):
        trie = trie_of("abc", "abd", "x")
        assert "abc" in trie and "abd" in trie and "x" in trie
        assert "ab" not in trie
        assert "abcd" not in trie

    def test_len_counts_unique(self):
        trie = trie_of("a", "b", "a")
        assert len(trie) == 2

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            trie_of("")

    def test_iter_keys_lexicographic(self):
        trie = trie_of("b", "ab", "abc", "aa")
        assert list(trie.iter_keys()) == ["aa", "ab", "abc", "b"]


class TestSubstringQueries:
    def test_keys_starting_at(self):
        trie = trie_of("ab", "abc", "b")
        assert list(trie.keys_starting_at("abc", 0)) == ["ab", "abc"]
        assert list(trie.keys_starting_at("abc", 1)) == ["b"]
        assert list(trie.keys_starting_at("abc", 2)) == []

    def test_substrings_of(self):
        trie = trie_of("Willi", "liam", "nton", "zzz")
        found = trie.substrings_of("William")
        assert set(found) == {"Willi", "liam"}

    def test_substrings_of_exact_key(self):
        trie = trie_of("liam")
        assert trie.substrings_of("liam") == ["liam"]

    def test_substrings_deduplicated(self):
        trie = trie_of("aa")
        assert trie.substrings_of("aaaa") == ["aa"]

    def test_substrings_of_miss(self):
        trie = trie_of("xyz")
        assert trie.substrings_of("abc") == []

    @settings(max_examples=100, deadline=None)
    @given(
        keys=st.sets(st.text(alphabet="ab", min_size=1, max_size=4),
                     min_size=1, max_size=8),
        gram=st.text(alphabet="ab", max_size=8),
    )
    def test_substrings_matches_bruteforce(self, keys, gram):
        trie = KeyTrie()
        for key in keys:
            trie.insert(key)
        expected = {k for k in keys if k in gram}
        assert set(trie.substrings_of(gram)) == expected


class TestPrefixFree:
    def test_prefix_free_positive(self):
        assert trie_of("ab", "ba", "ca").is_prefix_free()

    def test_prefix_free_negative(self):
        assert not trie_of("ab", "abc").is_prefix_free()

    def test_single_key(self):
        assert trie_of("abc").is_prefix_free()

    @settings(max_examples=100, deadline=None)
    @given(keys=st.sets(st.text(alphabet="abc", min_size=1, max_size=5),
                        min_size=1, max_size=10))
    def test_prefix_free_matches_bruteforce(self, keys):
        trie = KeyTrie()
        for key in keys:
            trie.insert(key)
        brute = not any(
            a != b and b.startswith(a) for a in keys for b in keys
        )
        assert trie.is_prefix_free() is brute
