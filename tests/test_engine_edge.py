"""Engine edge cases and failure injection."""

import pytest

from repro import (
    FreeEngine,
    InMemoryCorpus,
    RegexSyntaxError,
    ScanEngine,
    build_multigram_index,
)


class TestEmptyCorpus:
    def test_search_empty_corpus(self):
        corpus = InMemoryCorpus([])
        index = build_multigram_index(corpus)
        report = FreeEngine(corpus, index).search("anything")
        assert report.n_matches == 0
        assert report.n_candidates == 0 or report.used_full_scan

    def test_scan_empty_corpus(self):
        report = ScanEngine(InMemoryCorpus([])).search("a")
        assert report.n_matches == 0


class TestDegeneratePatterns:
    @pytest.fixture()
    def engine(self):
        corpus = InMemoryCorpus.from_texts(["ab", "cd", ""])
        index = build_multigram_index(corpus, threshold=0.5,
                                      max_gram_len=3)
        return FreeEngine(corpus, index)

    def test_empty_pattern_matches_everywhere(self, engine):
        # the empty regex matches the empty string in every unit
        report = engine.search("")
        assert report.matching_units == 3

    def test_pattern_of_only_star(self, engine):
        report = engine.search("a*")
        assert report.matching_units == 3  # empty match everywhere

    def test_pattern_longer_than_any_doc(self, engine):
        report = engine.search("abcdefghij")
        assert report.n_matches == 0

    def test_malformed_pattern_raises(self, engine):
        with pytest.raises(RegexSyntaxError):
            engine.search("(((")

    def test_empty_unit_in_corpus_is_fine(self, engine):
        report = engine.search("ab")
        assert report.n_matches == 1


class TestForeignText:
    def test_foreign_chars_in_corpus_never_match(self):
        # characters outside the engine alphabet act as hard separators
        corpus = InMemoryCorpus.from_texts(["café abc", "ab c"])
        scan = ScanEngine(corpus)
        assert scan.count("abc") == 1
        assert scan.count("caf") == 1

    def test_foreign_char_in_pattern_rejected(self):
        corpus = InMemoryCorpus.from_texts(["x"])
        with pytest.raises(RegexSyntaxError):
            ScanEngine(corpus).search("café")

    def test_match_cannot_cross_foreign_char(self):
        corpus = InMemoryCorpus.from_texts(["aéb"])
        scan = ScanEngine(corpus)
        assert scan.count("a.b") == 0  # our dot excludes foreign chars
        assert scan.count("ab") == 0


class TestLimits:
    @pytest.fixture()
    def engine(self):
        corpus = InMemoryCorpus.from_texts(["aaa"] * 5)
        index = build_multigram_index(corpus, threshold=1.0,
                                      max_gram_len=2)
        return FreeEngine(corpus, index)

    def test_limit_zero_is_everything(self, engine):
        # limit=0 means "stop after 0 matches": nothing confirmed
        report = engine.search("a", limit=0)
        assert report.n_matches <= 1  # at most the first probe

    def test_limit_larger_than_results(self, engine):
        report = engine.search("aaa", limit=10_000)
        assert report.n_matches == 5
        assert not report.truncated

    def test_matcher_cache_reused(self, engine):
        engine.search("aa")
        first = engine._matcher("aa")
        engine.search("aa")
        assert engine._matcher("aa") is first

    def test_limit_mid_unit_accounting(self, engine):
        # each "aaa" unit holds three "a" matches; limit=2 stops inside
        # the first unit — the counters must reflect the truncation
        report = engine.search("a", limit=2)
        assert report.truncated
        assert report.n_matches_found == 2
        assert report.n_matches == 2
        assert report.matching_units == 1
        assert report.n_units_read == 1
        assert len(report.matches) == 2

    def test_limit_on_unit_boundary(self, engine):
        # limit=3 is exactly one unit's worth: still truncated (the
        # engine cannot know no more matches follow without reading on)
        report = engine.search("a", limit=3)
        assert report.truncated
        assert report.n_matches_found == 3
        assert report.matching_units == 1
        assert report.n_units_read == 1

    def test_unlimited_counts_every_unit(self, engine):
        report = engine.search("a")
        assert not report.truncated
        assert report.n_matches_found == 15  # 5 units x 3
        assert report.matching_units == 5


class TestMinCandidateRatioGuard:
    def test_guard_prefers_scan_on_fat_candidates(self):
        texts = ["common gram here"] * 9 + ["rare thing"]
        corpus = InMemoryCorpus.from_texts(texts)
        index = build_multigram_index(corpus, threshold=0.95,
                                      max_gram_len=6)
        guarded = FreeEngine(corpus, index, min_candidate_ratio=0.1)
        report = guarded.search("common")
        assert report.used_full_scan
        unguarded = FreeEngine(corpus, index)
        report2 = unguarded.search("common")
        assert not report2.used_full_scan
        assert report.n_matches == report2.n_matches

    def test_fallback_still_shows_postings_io(self):
        # the guard decides *after* executing the index plan: the
        # postings I/O already spent must stay visible in io_detail
        # (and the fallback itself must be flagged in the metrics)
        texts = ["common gram here"] * 9 + ["rare thing"]
        corpus = InMemoryCorpus.from_texts(texts)
        index = build_multigram_index(corpus, threshold=0.95,
                                      max_gram_len=6)
        guarded = FreeEngine(corpus, index, min_candidate_ratio=0.1)
        report = guarded.search("common")
        assert report.used_full_scan
        assert report.io_detail["postings_read"] > 0
        assert report.io_detail["sequential_chars"] > 0
        assert report.metrics.optimizer_fallback
        assert report.metrics.candidate_cache_hit is None

    def test_fallback_not_flagged_on_index_path(self):
        texts = ["common gram here"] * 9 + ["rare thing"]
        corpus = InMemoryCorpus.from_texts(texts)
        index = build_multigram_index(corpus, threshold=0.95,
                                      max_gram_len=6)
        report = FreeEngine(corpus, index).search("rare")
        assert not report.used_full_scan
        assert not report.metrics.optimizer_fallback
