"""Engine edge cases and failure injection."""

import pytest

from repro import (
    FreeEngine,
    InMemoryCorpus,
    RegexSyntaxError,
    ScanEngine,
    build_multigram_index,
)


class TestEmptyCorpus:
    def test_search_empty_corpus(self):
        corpus = InMemoryCorpus([])
        index = build_multigram_index(corpus)
        report = FreeEngine(corpus, index).search("anything")
        assert report.n_matches == 0
        assert report.n_candidates == 0 or report.used_full_scan

    def test_scan_empty_corpus(self):
        report = ScanEngine(InMemoryCorpus([])).search("a")
        assert report.n_matches == 0


class TestDegeneratePatterns:
    @pytest.fixture()
    def engine(self):
        corpus = InMemoryCorpus.from_texts(["ab", "cd", ""])
        index = build_multigram_index(corpus, threshold=0.5,
                                      max_gram_len=3)
        return FreeEngine(corpus, index)

    def test_empty_pattern_matches_everywhere(self, engine):
        # the empty regex matches the empty string in every unit
        report = engine.search("")
        assert report.matching_units == 3

    def test_pattern_of_only_star(self, engine):
        report = engine.search("a*")
        assert report.matching_units == 3  # empty match everywhere

    def test_pattern_longer_than_any_doc(self, engine):
        report = engine.search("abcdefghij")
        assert report.n_matches == 0

    def test_malformed_pattern_raises(self, engine):
        with pytest.raises(RegexSyntaxError):
            engine.search("(((")

    def test_empty_unit_in_corpus_is_fine(self, engine):
        report = engine.search("ab")
        assert report.n_matches == 1


class TestForeignText:
    def test_foreign_chars_in_corpus_never_match(self):
        # characters outside the engine alphabet act as hard separators
        corpus = InMemoryCorpus.from_texts(["café abc", "ab c"])
        scan = ScanEngine(corpus)
        assert scan.count("abc") == 1
        assert scan.count("caf") == 1

    def test_foreign_char_in_pattern_rejected(self):
        corpus = InMemoryCorpus.from_texts(["x"])
        with pytest.raises(RegexSyntaxError):
            ScanEngine(corpus).search("café")

    def test_match_cannot_cross_foreign_char(self):
        corpus = InMemoryCorpus.from_texts(["aéb"])
        scan = ScanEngine(corpus)
        assert scan.count("a.b") == 0  # our dot excludes foreign chars
        assert scan.count("ab") == 0


class TestLimits:
    @pytest.fixture()
    def engine(self):
        corpus = InMemoryCorpus.from_texts(["aaa"] * 5)
        index = build_multigram_index(corpus, threshold=1.0,
                                      max_gram_len=2)
        return FreeEngine(corpus, index)

    def test_limit_zero_is_everything(self, engine):
        # limit=0 means "stop after 0 matches": nothing confirmed
        report = engine.search("a", limit=0)
        assert report.n_matches <= 1  # at most the first probe

    def test_limit_larger_than_results(self, engine):
        report = engine.search("aaa", limit=10_000)
        assert report.n_matches == 5
        assert not report.truncated

    def test_matcher_cache_reused(self, engine):
        engine.search("aa")
        first = engine._matcher("aa")
        engine.search("aa")
        assert engine._matcher("aa") is first


class TestMinCandidateRatioGuard:
    def test_guard_prefers_scan_on_fat_candidates(self):
        texts = ["common gram here"] * 9 + ["rare thing"]
        corpus = InMemoryCorpus.from_texts(texts)
        index = build_multigram_index(corpus, threshold=0.95,
                                      max_gram_len=6)
        guarded = FreeEngine(corpus, index, min_candidate_ratio=0.1)
        report = guarded.search("common")
        assert report.used_full_scan
        unguarded = FreeEngine(corpus, index)
        report2 = unguarded.search("common")
        assert not report2.used_full_scan
        assert report.n_matches == report2.n_matches
