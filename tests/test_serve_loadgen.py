"""Tests for the serve load generator and its bench artifact."""

from __future__ import annotations

import json
import random

import pytest

from repro.corpus.document import DataUnit
from repro.corpus.store import InMemoryCorpus
from repro.errors import FreeError
from repro.index.builder import build_multigram_index
from repro.serve.loadgen import (
    BENCH_SERVE_SCHEMA,
    WorkloadMix,
    _percentile,
    default_mix,
    run_serve_benchmark,
    write_bench_serve,
)
from repro.serve.service import ServeConfig


class TestWorkloadMix:
    def test_picks_are_deterministic_under_a_seed(self):
        mix = default_mix()
        a = [mix.pick(random.Random(42)) for _ in range(5)]
        b = [mix.pick(random.Random(42)) for _ in range(5)]
        assert a == b

    def test_endpoints_split_by_fraction(self):
        mix = WorkloadMix(patterns=["x"], first_k_fraction=1.0)
        endpoint, _pattern = mix.pick(random.Random(1))
        assert endpoint == "/first_k"
        mix = WorkloadMix(patterns=["x"], first_k_fraction=0.0)
        endpoint, _pattern = mix.pick(random.Random(1))
        assert endpoint == "/search"

    def test_validation(self):
        with pytest.raises(FreeError):
            WorkloadMix(patterns=[])
        with pytest.raises(FreeError):
            WorkloadMix(patterns=["a", "b"], weights=[1.0])


class TestPercentile:
    def test_edges(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], 0.99) == 3.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.95) == 95.0
        assert _percentile(values, 0.99) == 99.0


@pytest.fixture(scope="module")
def bench_record():
    corpus = InMemoryCorpus([
        DataUnit(i, f"unit {i} powerpc motorola stanford words here")
        for i in range(40)
    ])
    index = build_multigram_index(corpus, threshold=0.3)
    mix = WorkloadMix(
        patterns=["powerpc", "stanford", "motorola"],
        first_k_fraction=0.3,
    )
    return run_serve_benchmark(
        lambda: corpus,
        index,
        serve_config=ServeConfig(
            workers=2, queue_depth=16, timeout_seconds=10.0,
            trace_sample_rate=1.0,
        ),
        seed=7,
        closed_concurrency=4,
        closed_requests=24,
        open_rate=200.0,
        open_requests=12,
        mix=mix,
    )


class TestServeBenchmark:
    def test_schema_and_gate_fields(self, bench_record):
        record = bench_record
        assert record["schema"] == BENCH_SERVE_SCHEMA
        assert record["n_5xx"] == 0
        assert record["ok"] is True
        assert record["sustained_qps"] > 0
        assert record["metrics_exposition_lines"] > 0

    def test_client_and_server_accounting_agree(self, bench_record):
        phases = bench_record["phases"]
        total_completed = 0
        for phase in phases.values():
            counts = phase["status_counts"]
            assert sum(counts.values()) == phase["completed"]
            assert phase["requests"] == (
                phase["completed"] + phase["connection_errors"]
            )
            total_completed += phase["completed"]
        service = bench_record["service"]
        # Every client-side completion is accounted server-side, and
        # every admitted query terminated in exactly one bucket.
        assert service["queries"] + service["shed"] == total_completed
        assert service["queries"] == (
            service["served"]
            + service["timeouts"]
            + service["client_errors"]
            + service["server_errors"]
        )
        assert service["server_errors"] == 0

    def test_latency_summary_shape(self, bench_record):
        closed = bench_record["phases"]["closed"]
        lat = closed["latency_seconds"]
        assert set(lat) == {"p50", "p95", "p99", "mean", "max"}
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_write_bench_serve_roundtrips(self, bench_record, tmp_path):
        path = tmp_path / "BENCH_free_serve.json"
        write_bench_serve(str(path), bench_record)
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == BENCH_SERVE_SCHEMA
        assert on_disk["ok"] is True
        # sort_keys + trailing newline, like every bench artifact.
        text = path.read_text()
        assert text.endswith("\n")

    def test_per_endpoint_histograms(self, bench_record):
        for phase in bench_record["phases"].values():
            per_endpoint = phase["per_endpoint"]
            assert per_endpoint, "no per-endpoint histograms recorded"
            total = 0
            for endpoint, summary in per_endpoint.items():
                assert endpoint.startswith("/")
                buckets = summary["buckets"]
                assert "+Inf" in buckets
                # cumulative buckets end at the observation count
                assert buckets["+Inf"] == summary["count"]
                counts = [
                    buckets[k] for k in buckets
                ]
                assert counts == sorted(counts)
                assert summary["p50"] <= summary["p95"] <= summary["p99"]
                total += summary["count"]
            assert total == phase["completed"]

    def test_trace_store_stats_recorded(self, bench_record):
        store = bench_record["trace_store"]
        # the default bench samples everything, so the store saw every
        # admitted query and kept each one
        assert store["offered"] == bench_record["service"]["queries"]
        assert store["kept_sampled"] == store["offered"]

    def test_metrics_exposition_carries_exemplars(self, bench_record):
        from repro.obs.registry import parse_prometheus_text

        exposition = bench_record["metrics_exposition"]
        parse_prometheus_text(exposition)  # strict parse must pass
        exemplar_lines = [
            line for line in exposition.splitlines()
            if "free_serve_request_seconds_bucket" in line
            and "# {" in line
        ]
        assert exemplar_lines, "bench produced no latency exemplars"
        assert all('trace_id="' in l for l in exemplar_lines)
