"""Complete k-gram index tests."""

import pytest

from repro.corpus.store import InMemoryCorpus
from repro.errors import IndexBuildError
from repro.index.kgram import build_complete_index


def corpus_of(*texts):
    return InMemoryCorpus.from_texts(texts)


class TestCompleteIndex:
    def test_every_gram_indexed(self):
        corpus = corpus_of("abcd", "bcde")
        index = build_complete_index(corpus, k_values=[2, 3])
        expected_2 = {"ab", "bc", "cd", "de"}
        expected_3 = {"abc", "bcd", "cde"}
        assert set(index.keys()) == expected_2 | expected_3

    def test_postings_correct(self):
        corpus = corpus_of("abab", "ab", "zz")
        index = build_complete_index(corpus, k_values=[2])
        assert index.lookup("ab").ids() == [0, 1]
        assert index.lookup("ba").ids() == [0]
        assert index.lookup("zz").ids() == [2]

    def test_kind_and_metadata(self):
        corpus = corpus_of("abc")
        index = build_complete_index(corpus, k_values=[2])
        assert index.kind == "complete"
        assert index.threshold is None
        assert index.max_gram_len == 2

    def test_keys_by_length_split(self):
        corpus = corpus_of("abcd")
        index = build_complete_index(corpus, k_values=[2, 4])
        hist = index.stats.keys_by_length
        assert hist[2] == 3  # ab bc cd
        assert hist[4] == 1  # abcd
        assert 3 not in hist

    def test_not_prefix_free_in_general(self):
        corpus = corpus_of("abc")
        index = build_complete_index(corpus, k_values=[2, 3])
        assert not index.is_prefix_free()

    def test_max_keys_guard(self):
        corpus = corpus_of("abcdefghij" * 10)
        with pytest.raises(IndexBuildError):
            build_complete_index(corpus, k_values=[5], max_keys=3)

    def test_empty_k_values_rejected(self):
        with pytest.raises(IndexBuildError):
            build_complete_index(corpus_of("a"), k_values=[])

    def test_bad_k_rejected(self):
        with pytest.raises(IndexBuildError):
            build_complete_index(corpus_of("a"), k_values=[0])

    def test_short_docs_skip_long_grams(self):
        corpus = corpus_of("ab")
        index = build_complete_index(corpus, k_values=[2, 5])
        assert set(index.keys()) == {"ab"}

    def test_selectivity_helper(self):
        corpus = corpus_of("ab", "ab", "cd", "ef")
        index = build_complete_index(corpus, k_values=[2])
        assert index.selectivity("ab") == 0.5
        assert index.selectivity("zz") is None


class TestCompleteVsMultigram:
    """Table 3's qualitative relationships must hold on the fixture."""

    def test_complete_has_many_more_keys(
        self, complete_index, multigram_index
    ):
        assert complete_index.stats.n_keys > multigram_index.stats.n_keys

    def test_complete_has_more_postings(
        self, complete_index, multigram_index
    ):
        assert (
            complete_index.stats.n_postings
            > multigram_index.stats.n_postings
        )

    def test_multigram_key_ratio_is_small(
        self, complete_index, multigram_index
    ):
        ratio = multigram_index.stats.n_keys / complete_index.stats.n_keys
        assert ratio < 0.5  # paper: < 1%; small fixtures are less extreme
