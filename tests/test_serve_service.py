"""End-to-end tests for the ``free serve`` query service.

The servers run on a background event-loop thread (ServerThread) and
are driven through stdlib ``http.client`` — the same network path any
real client takes.  Covers the ISSUE acceptance points: byte-identical
results to the engine path, bounded-queue backpressure accounting,
cooperative per-query timeouts, graceful drain, and a ``/metrics``
payload that satisfies the strict CI parser.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import threading
import time

import pytest

from repro.corpus.document import DataUnit
from repro.corpus.store import CorpusStore, InMemoryCorpus
from repro.engine.factory import wrap_index
from repro.index.builder import build_multigram_index
from repro.index.sharded import ShardedIndex
from repro.obs.registry import MetricsRegistry, parse_prometheus_text
from repro.serve.service import (
    QueryService,
    RequestIdentity,
    ServeConfig,
    ServerThread,
    build_slots,
    slots_from_paths,
)


def request(port, method, path, payload=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body, headers)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def make_server(corpus, index, registry=None, **config_kwargs):
    registry = registry if registry is not None else MetricsRegistry()
    config = ServeConfig(port=0, **config_kwargs)
    slots = build_slots(lambda: corpus, index, config, registry)
    service = QueryService(config, slots, registry=registry)
    return ServerThread(service), slots


class SlowCorpus(CorpusStore):
    """A corpus whose unit reads take a fixed wall-clock delay."""

    def __init__(self, inner, delay):
        self._inner = inner
        self.delay = delay

    def __len__(self):
        return len(self._inner)

    def get(self, doc_id):
        time.sleep(self.delay)
        return self._inner.get(doc_id)

    def __iter__(self):
        for unit in self._inner:
            time.sleep(self.delay)
            yield unit

    @property
    def total_chars(self):
        return self._inner.total_chars


@pytest.fixture(scope="module")
def server(corpus, multigram_index):
    """One warm server over the shared test corpus, up for the module."""
    thread, _slots = make_server(
        corpus, multigram_index, workers=2, queue_depth=16,
        timeout_seconds=30.0, candidate_cache_size=0,
    )
    with thread:
        yield thread


class TestEndpoints:
    def test_search_byte_identical_to_engine_path(self, corpus):
        """HTTP answers == engine answers, to the byte.

        Cache metrics (postings/plan hits) live partly in the *index*,
        so the two sides get twin indexes built from the same corpus
        and run the same query sequence in the same order — cache
        state then evolves in lockstep and even the hit/miss counters
        must serialize identically.
        """
        patterns = [
            r"stanford",
            r"motorola.*(xpc|mpc)[0-9]+",
            r"\a+,\s[a-z][a-z]\s\d\d\d\d\d",  # NULL plan -> full scan
            r"stanford",  # repeat: plan-cache hit on both sides
        ]
        index_served = build_multigram_index(corpus, threshold=0.1)
        index_local = build_multigram_index(corpus, threshold=0.1)
        thread, _slots = make_server(
            corpus, index_served, workers=1, candidate_cache_size=0,
            plan_cache_size=128, matcher_cache_size=128,
        )
        with thread, wrap_index(
            corpus, index_local, candidate_cache_size=0,
            plan_cache_size=128, matcher_cache_size=128,
        ) as engine:
            for pattern in patterns:
                status, _headers, body = request(
                    thread.port, "POST", "/search", {"pattern": pattern}
                )
                assert status == 200
                served = json.loads(body)
                local = engine.search(pattern).as_dict()
                # Drop the two wall-clock carriers; everything else
                # must agree to the byte (sort_keys on both sides).
                for payload in (served, local):
                    payload.pop("timings")
                    if payload["metrics"] is not None:
                        payload["metrics"].pop("phase_seconds", None)
                assert json.dumps(served, sort_keys=True) == json.dumps(
                    local, sort_keys=True
                ), pattern

    def test_first_k_truncates(self, server):
        status, _headers, body = request(
            server.port, "POST", "/first_k",
            {"pattern": "stanford", "k": 2},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["truncated"]
        assert payload["n_matches"] == 2
        assert len(payload["matches"]) == 2

    def test_explain_returns_plan_text(self, server):
        status, headers, body = request(
            server.port, "GET", "/explain?pattern=stanford"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body.decode().strip()

    def test_healthz_reports_state(self, server):
        status, _headers, body = request(server.port, "GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert payload["queue_depth"] == 16
        assert payload["served"] >= 0
        assert payload["shed"] == 0

    def test_metrics_pass_the_strict_parser(self, server):
        request(server.port, "POST", "/search", {"pattern": "ebay"})
        status, headers, body = request(server.port, "GET", "/metrics")
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode()
        parse_prometheus_text(text)  # the free metrics --check gate
        assert "free_serve_requests_total" in text
        assert "free_serve_request_seconds" in text

    def test_unknown_path_is_404(self, server):
        status, _headers, _body = request(server.port, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _headers, _body = request(server.port, "GET", "/search")
        assert status == 405
        status, _headers, _body = request(
            server.port, "POST", "/metrics", {}
        )
        assert status == 405

    def test_malformed_json_is_400(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/search", "{nope",
                {"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_missing_pattern_is_400(self, server):
        status, _headers, body = request(
            server.port, "POST", "/search", {"limit": 3}
        )
        assert status == 400
        assert "pattern" in json.loads(body)["error"]

    def test_invalid_regex_is_400(self, server):
        status, _headers, _body = request(
            server.port, "POST", "/search", {"pattern": "["}
        )
        assert status == 400

    def test_bad_limit_is_400(self, server):
        for bad in (0, -2, "five", True):
            status, _headers, _body = request(
                server.port, "POST", "/search",
                {"pattern": "ebay", "limit": bad},
            )
            assert status == 400


def _tiny_corpus(n_units=40):
    return InMemoryCorpus([
        DataUnit(i, f"unit {i} padding text powerpc block")
        for i in range(n_units)
    ])


class TestBackpressure:
    def test_saturation_sheds_and_accounts_exactly(self):
        """Every request is either served or shed; the counts add up."""
        corpus = _tiny_corpus(30)
        index = build_multigram_index(corpus, threshold=0.3)
        slow = SlowCorpus(corpus, delay=0.01)
        thread, _slots = make_server(
            slow, index, workers=1, queue_depth=2, timeout_seconds=None,
        )
        n_requests = 12
        statuses = []
        lock = threading.Lock()

        def fire():
            status, headers, _body = request(
                thread.port, "POST", "/search",
                {"pattern": "powerpc", "collect_matches": False},
            )
            with lock:
                statuses.append((status, headers))

        with thread:
            clients = [
                threading.Thread(target=fire) for _ in range(n_requests)
            ]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
        stats = thread.service.stats
        assert len(statuses) == n_requests
        n_ok = sum(1 for s, _h in statuses if s == 200)
        n_shed = sum(1 for s, _h in statuses if s == 429)
        assert n_ok + n_shed == n_requests  # nothing lost, no 5xx
        assert n_ok == stats.served
        assert n_shed == stats.shed
        assert stats.queries == stats.served  # all admitted completed
        assert stats.server_errors == 0
        # The queue (depth 2, one slow worker) must have overflowed.
        assert n_shed > 0
        retry_after = [
            h["Retry-After"] for s, h in statuses if s == 429
        ]
        assert retry_after and all(int(v) >= 1 for v in retry_after)

    def test_draining_service_answers_503(self):
        import asyncio

        corpus = _tiny_corpus(5)
        index = build_multigram_index(corpus, threshold=0.3)
        registry = MetricsRegistry()
        config = ServeConfig(port=0)
        slots = build_slots(lambda: corpus, index, config, registry)
        service = QueryService(config, slots, registry=registry)

        async def go():
            service._draining = True
            resp = await service._submit(
                "/search", "x", lambda engine, trace: None,
                RequestIdentity.of(None),
            )
            return resp.status

        assert asyncio.run(go()) == 503


class TestTimeouts:
    def test_deadline_cancels_the_running_query(self):
        """A 504 must also *stop the worker reading*, not just answer."""
        n_units = 60
        corpus = _tiny_corpus(n_units)
        index = build_multigram_index(corpus, threshold=0.3)
        slow = SlowCorpus(corpus, delay=0.05)
        thread, slots = make_server(
            slow, index, workers=1, queue_depth=4, timeout_seconds=0.2,
        )
        with thread:
            # A NULL-plan pattern: full scan, 60 units x 50ms = 3s
            # without the deadline.
            started = time.monotonic()
            status, _headers, body = request(
                thread.port, "POST", "/search",
                {"pattern": r"\d\d\d\d\d\d\d\d\d"},
            )
            elapsed = time.monotonic() - started
            assert status == 504
            assert "deadline" in json.loads(body)["error"]
            assert elapsed < 2.0  # nowhere near the 3s full read
            # The worker is immediately free for the next query.
            status, _headers, _body = request(
                thread.port, "POST", "/first_k",
                {"pattern": "powerpc", "k": 1},
            )
            assert status == 200
        deadline_corpus = slots[0].corpus
        # The timed-out scan read only a prefix of the corpus.
        assert deadline_corpus.reads < n_units
        assert thread.service.stats.timeouts == 1

    def test_queue_wait_counts_against_the_deadline(self):
        corpus = _tiny_corpus(40)
        index = build_multigram_index(corpus, threshold=0.3)
        slow = SlowCorpus(corpus, delay=0.05)
        thread, _slots = make_server(
            slow, index, workers=1, queue_depth=8, timeout_seconds=0.25,
        )
        scan = {"pattern": r"\d\d\d\d\d\d\d\d\d"}
        statuses = []
        lock = threading.Lock()

        def fire():
            status, _headers, _body = request(
                thread.port, "POST", "/search", scan
            )
            with lock:
                statuses.append(status)

        with thread:
            clients = [threading.Thread(target=fire) for _ in range(4)]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
        # The first query burns the whole budget; the queued ones must
        # expire (in queue or at dequeue) rather than run serially to
        # completion.  All four time out; none may 5xx.
        assert statuses.count(504) == 4
        assert thread.service.stats.timeouts == 4


class TestShutdown:
    def test_graceful_drain_completes_inflight_query(self):
        corpus = _tiny_corpus(50)
        index = build_multigram_index(corpus, threshold=0.3)
        slow = SlowCorpus(corpus, delay=0.02)
        thread, slots = make_server(
            slow, index, workers=1, queue_depth=4, timeout_seconds=30.0,
        )
        result = {}

        def fire():
            result["response"] = request(
                thread.port, "POST", "/search",
                {"pattern": r"\d\d\d\d\d\d\d\d\d"},  # ~1s full scan
            )

        thread.start()
        client = threading.Thread(target=fire)
        client.start()
        time.sleep(0.3)  # the query is mid-confirmation now
        thread.stop()  # must drain, not kill
        client.join(timeout=30)
        status, _headers, body = result["response"]
        assert status == 200
        assert json.loads(body)["n_candidates"] == 50
        assert thread.service.stats.served == 1
        # stop() closed every engine slot (caches dropped, no pools).
        assert thread.service._stopped

    def test_stop_is_idempotent_via_context_manager(self):
        corpus = _tiny_corpus(5)
        index = build_multigram_index(corpus, threshold=0.3)
        thread, _slots = make_server(corpus, index)
        with thread:
            request(
                thread.port, "POST", "/search", {"pattern": "powerpc"}
            )
        thread.stop()  # second stop: no-op, no error


class TestQueryLog:
    def test_jsonl_log_records_every_query(
        self, corpus, multigram_index, tmp_path
    ):
        log_path = tmp_path / "queries.jsonl"
        thread, _slots = make_server(
            corpus, multigram_index, workers=1,
            query_log_path=str(log_path),
        )
        with thread:
            request(
                thread.port, "POST", "/search", {"pattern": "stanford"}
            )
            request(
                thread.port, "POST", "/first_k",
                {"pattern": "ebay", "k": 1},
            )
            request(thread.port, "POST", "/search",
                    {"pattern": "["})  # engine error: logged as 400
            request(thread.port, "GET", "/healthz")  # NOT logged
        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(entries) == 3
        by_endpoint = [e["endpoint"] for e in entries]
        assert by_endpoint == ["/search", "/first_k", "/search"]
        ok = entries[0]
        assert ok["status"] == 200
        assert ok["pattern"] == "stanford"
        assert ok["latency_seconds"] > 0
        assert ok["n_matches"] is not None
        assert entries[2]["status"] == 400
        assert entries[2]["n_matches"] is None
        assert all("ts_monotonic" in e for e in entries)


class TestQueryLogRotation:
    def test_rotation_rolls_to_dot_one(self, tmp_path):
        from repro.serve.service import _QueryLog

        path = str(tmp_path / "queries.jsonl")
        log = _QueryLog(path, max_bytes=512)
        try:
            for i in range(100):
                log.write({"seq": i, "pattern": "x" * 32})
        finally:
            log.close()
        rolled = path + ".1"
        assert os.path.exists(rolled)
        assert os.path.getsize(path) <= 512
        # both generations hold whole, parseable JSON lines
        entries = []
        for name in (rolled, path):
            with open(name, encoding="utf-8") as handle:
                for line in handle:
                    assert line.endswith("\n")
                    entries.append(json.loads(line))
        seqs = [e["seq"] for e in entries]
        # the rollover keeps a contiguous, in-order tail
        assert seqs == list(range(seqs[0], 100))
        assert log.rotations > 0

    def test_single_oversized_line_does_not_loop(self, tmp_path):
        from repro.serve.service import _QueryLog

        path = str(tmp_path / "queries.jsonl")
        log = _QueryLog(path, max_bytes=64)
        try:
            log.write({"pattern": "y" * 500})  # bigger than max_bytes
            log.write({"pattern": "z" * 500})
        finally:
            log.close()
        # each oversized line lands before triggering a rotate, so the
        # live file plus one rollover hold one line each
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1
        with open(path + ".1", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_unbounded_by_default(self, tmp_path):
        from repro.serve.service import _QueryLog

        path = str(tmp_path / "queries.jsonl")
        log = _QueryLog(path)
        try:
            for i in range(50):
                log.write({"seq": i, "pattern": "x" * 64})
        finally:
            log.close()
        assert not os.path.exists(path + ".1")
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 50

    def test_size_resumes_from_existing_file(self, tmp_path):
        from repro.serve.service import _QueryLog

        path = str(tmp_path / "queries.jsonl")
        first = _QueryLog(path, max_bytes=4096)
        first.write({"seq": 0})
        first.close()
        # a restart must count the bytes already on disk
        second = _QueryLog(path, max_bytes=4096)
        try:
            assert second._size == os.path.getsize(path)
        finally:
            second.close()

    def test_rotation_over_http(self, corpus, multigram_index, tmp_path):
        log_path = tmp_path / "queries.jsonl"
        thread, _slots = make_server(
            corpus, multigram_index, workers=1,
            query_log_path=str(log_path),
            query_log_max_bytes=256,
        )
        with thread:
            for _ in range(8):
                request(
                    thread.port, "POST", "/search",
                    {"pattern": "stanford", "collect_matches": False},
                )
            _status, _headers, body = request(
                thread.port, "GET", "/debug/vars"
            )
        vars_payload = json.loads(body)
        assert vars_payload["query_log"]["rotations"] >= 1
        rolled = str(log_path) + ".1"
        assert os.path.exists(rolled)
        for name in (rolled, str(log_path)):
            with open(name, encoding="utf-8") as handle:
                for line in handle:
                    json.loads(line)  # every line whole


class _TrackingCorpus(CorpusStore):
    """A corpus proxy that records whether close() was called."""

    def __init__(self, inner):
        self._inner = inner
        self.closed = False

    def __len__(self):
        return len(self._inner)

    def get(self, doc_id):
        return self._inner.get(doc_id)

    def __iter__(self):
        return iter(self._inner)

    @property
    def total_chars(self):
        return self._inner.total_chars

    def close(self):
        self.closed = True


class _ExplodingSlot:
    """Engine-slot stand-in whose close() can be made to raise."""

    def __init__(self, error=None):
        self.error = error
        self.closed = False

    def close(self):
        self.closed = True
        if self.error is not None:
            raise self.error


class TestLifecycle:
    def test_build_slots_prewarms_shard_pools(self):
        # CONC003 remediation: the fork-based shard pool must exist
        # before the serve stack starts any thread, not lazily on the
        # first query.
        corpus = _tiny_corpus(24)
        index = ShardedIndex.build(corpus, 2, threshold=0.3)
        config = ServeConfig(port=0, workers=1, shard_workers=2)
        slots = build_slots(
            lambda: corpus, index, config, MetricsRegistry()
        )
        try:
            assert slots[0].engine._pool is not None
        finally:
            for slot in slots:
                slot.close()

    def test_slots_from_ingest_directory(self, tmp_path):
        # An ingest directory path in place of an index image: the
        # directory is opened read-only once and every worker slot
        # serves out of its live corpus/index pair.
        from repro.index.builder import MultigramIndexBuilder
        from repro.index.ingest import IngestDirectory

        ingest_root = str(tmp_path / "ingest")
        with IngestDirectory(
            ingest_root,
            builder=MultigramIndexBuilder(
                threshold=0.3, max_gram_len=5
            ),
            memtable_docs=2,
            registry=MetricsRegistry(),
        ) as directory:
            directory.add("william jefferson clinton")
            directory.add("the cat sat on the mat")
            directory.add("cats and more cats")

        config = ServeConfig(port=0, workers=2)
        slots = slots_from_paths(
            "ignored-corpus-path", ingest_root, config,
            MetricsRegistry(),
        )
        try:
            assert len(slots) == config.workers
            for slot in slots:
                report = slot.engine.search(
                    "cat", collect_matches=True
                )
                assert report.n_matches == 3
        finally:
            for slot in slots:
                slot.close()

    def test_build_slots_closes_earlier_slots_on_failure(self):
        corpus = _tiny_corpus(8)
        index = build_multigram_index(corpus, threshold=0.3)
        opened = []

        def opener():
            if opened:
                raise RuntimeError("disk went away")
            tracked = _TrackingCorpus(corpus)
            opened.append(tracked)
            return tracked

        config = ServeConfig(port=0, workers=2)
        with pytest.raises(RuntimeError, match="disk went away"):
            build_slots(opener, index, config, MetricsRegistry())
        # Slot 0 was fully built before the second opener call blew
        # up; its corpus must not leak (RES001).
        assert opened[0].closed

    def test_stop_closes_every_slot_despite_errors(self):
        config = ServeConfig(port=0, workers=3)
        slots = [
            _ExplodingSlot(RuntimeError("first")),
            _ExplodingSlot(RuntimeError("second")),
            _ExplodingSlot(),
        ]
        service = QueryService(config, slots)
        with pytest.raises(RuntimeError, match="first"):
            asyncio.run(service.stop())
        assert all(slot.closed for slot in slots)
        assert service._stopped
        asyncio.run(service.stop())  # idempotent: no re-raise

    def test_stop_closes_query_log_after_slot_error(self, tmp_path):
        log_path = tmp_path / "queries.jsonl"
        config = ServeConfig(
            port=0, workers=1, query_log_path=str(log_path)
        )
        service = QueryService(
            config, [_ExplodingSlot(RuntimeError("boom"))]
        )
        with pytest.raises(RuntimeError, match="boom"):
            asyncio.run(service.stop())
        assert service._query_log is not None
        assert service._query_log._file is None
