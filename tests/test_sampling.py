"""Sampled selectivity estimator tests."""

import pytest

from repro import InMemoryCorpus, build_corpus
from repro.plan.sampling import SampledSelectivityEstimator


class TestSampling:
    def test_full_sample_is_exact(self):
        corpus = InMemoryCorpus.from_texts(
            ["needle one", "hay", "needle two", "hay"]
        )
        est = SampledSelectivityEstimator(corpus, sample_size=100)
        assert est.gram_selectivity("needle") == 0.5
        assert est.regex_selectivity("needle (one|two)") == 0.5

    def test_deterministic_by_seed(self):
        corpus = build_corpus(n_pages=60, seed=61)
        a = SampledSelectivityEstimator(corpus, sample_size=10, seed=5)
        b = SampledSelectivityEstimator(corpus, sample_size=10, seed=5)
        assert a.sample_ids == b.sample_ids

    def test_different_seed_differs(self):
        corpus = build_corpus(n_pages=60, seed=61)
        a = SampledSelectivityEstimator(corpus, sample_size=10, seed=1)
        b = SampledSelectivityEstimator(corpus, sample_size=10, seed=2)
        assert a.sample_ids != b.sample_ids

    def test_estimate_close_to_truth(self):
        corpus = build_corpus(
            n_pages=300, seed=62, feature_probs={"script": 0.5}
        )
        truth = sum("<script>" in u.text for u in corpus) / len(corpus)
        est = SampledSelectivityEstimator(corpus, sample_size=120, seed=3)
        estimate = est.gram_selectivity("<script>")
        lo, hi = est.confidence_interval(estimate)
        assert lo <= truth <= hi

    def test_expected_matching_units(self):
        corpus = InMemoryCorpus.from_texts(["x"] * 8 + ["y"] * 2)
        est = SampledSelectivityEstimator(corpus, sample_size=100)
        assert est.expected_matching_units("x") == pytest.approx(8.0)

    def test_usefulness_verdict(self):
        corpus = InMemoryCorpus.from_texts(["aa"] * 9 + ["bb"])
        est = SampledSelectivityEstimator(corpus, sample_size=100)
        assert est.is_probably_useless("aa", threshold=0.1)
        assert not est.is_probably_useless("bb", threshold=0.1)

    def test_confidence_interval_bounds(self):
        corpus = InMemoryCorpus.from_texts(["a", "b"])
        est = SampledSelectivityEstimator(corpus)
        lo, hi = est.confidence_interval(0.0)
        assert lo == 0.0
        lo, hi = est.confidence_interval(1.0)
        assert hi == 1.0

    def test_bad_sample_size(self):
        corpus = InMemoryCorpus.from_texts(["a"])
        with pytest.raises(ValueError):
            SampledSelectivityEstimator(corpus, sample_size=0)

    def test_empty_corpus(self):
        est = SampledSelectivityEstimator(InMemoryCorpus([]))
        assert est.gram_selectivity("x") == 0.0
        assert est.regex_selectivity("x") == 0.0

    def test_sample_verdicts_agree_with_miner(self):
        """The sample's usefulness verdicts should mostly agree with
        the exact miner on clearly-rare and clearly-common grams."""
        corpus = build_corpus(n_pages=200, seed=63)
        est = SampledSelectivityEstimator(corpus, sample_size=80, seed=4)
        # structural gram on every page vs a gram that never occurs
        assert est.is_probably_useless("<p>", 0.1)
        assert not est.is_probably_useless("qqqqzz", 0.1)
