"""CLI tests: synth -> build -> search/explain round trip."""

import os

import pytest

from repro.cli import main


@pytest.fixture()
def images(tmp_path):
    corpus_path = str(tmp_path / "corpus.img")
    index_path = str(tmp_path / "index.img")
    assert main(["synth", "--pages", "40", "--seed", "3",
                 "--out", corpus_path]) == 0
    assert main(["build", corpus_path, "--out", index_path,
                 "--threshold", "0.2", "--max-gram-len", "6"]) == 0
    return corpus_path, index_path


class TestSynth:
    def test_writes_image(self, tmp_path, capsys):
        out = str(tmp_path / "c.img")
        assert main(["synth", "--pages", "10", "--out", out]) == 0
        assert os.path.exists(out)
        assert "10 pages" in capsys.readouterr().out


class TestBuild:
    def test_build_reports_stats(self, images, capsys):
        # images fixture already built; rebuild presuf variant
        corpus_path, _ = images
        out2 = corpus_path + ".suffix.idx"
        assert main(["build", corpus_path, "--out", out2,
                     "--presuf"]) == 0
        text = capsys.readouterr().out
        assert "presuf index" in text
        assert "corpus scans" in text


class TestBuildProfile:
    def test_build_persists_report_and_profile(self, images, capsys):
        corpus_path, _ = images
        out2 = corpus_path + ".prof.idx"
        assert main(["build", corpus_path, "--out", out2,
                     "--profile"]) == 0
        text = capsys.readouterr().out
        assert os.path.exists(out2 + ".build.json")
        assert "build report ->" in text
        assert "build profile (multigram)" in text
        assert "level | candidates" in text
        assert "phase mining" in text
        assert "totals:" in text

    def test_index_alias(self, images, capsys):
        corpus_path, _ = images
        out2 = corpus_path + ".alias.idx"
        assert main(["index", corpus_path, "--out", out2]) == 0
        assert os.path.exists(out2)
        assert os.path.exists(out2 + ".build.json")

    def test_build_format_flag(self, images, capsys):
        corpus_path, _ = images
        v1 = corpus_path + ".v1.idx"
        assert main(["build", corpus_path, "--out", v1,
                     "--format", "v1"]) == 0
        with open(v1, "rb") as infile:
            assert infile.read(8) == b"FREEIDX1"


class TestConvert:
    def test_convert_round_trip(self, images, capsys):
        corpus_path, index_path = images
        v1 = str(index_path) + ".v1"
        back = str(index_path) + ".back"
        assert main(["convert", index_path, v1, "--format", "v1"]) == 0
        assert main(["convert", v1, back, "--format", "v2"]) == 0
        assert "converted" in capsys.readouterr().out
        with open(v1, "rb") as infile:
            assert infile.read(8) == b"FREEIDX1"
        with open(back, "rb") as infile:
            assert infile.read(8) == b"FREEIDX2"
        # The converted image still answers queries.
        assert main(["search", corpus_path, back, "clinton"]) == 0

    def test_convert_bad_image_is_clean_error(self, tmp_path, capsys):
        bogus = str(tmp_path / "bogus.idx")
        with open(bogus, "wb") as out:
            out.write(b"NOTANIDX")
        assert main(["convert", bogus, bogus + ".out"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSearch:
    def test_search_finds_matches(self, images, capsys):
        corpus_path, index_path = images
        assert main(["search", corpus_path, index_path, "<title>"]) == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_search_ranked(self, images, capsys):
        corpus_path, index_path = images
        assert main(["search", corpus_path, index_path,
                     r"<p>\a+", "--ranked"]) == 0

    def test_search_limit(self, images, capsys):
        corpus_path, index_path = images
        assert main(["search", corpus_path, index_path, "<p>",
                     "--limit", "3"]) == 0

    def test_bad_pattern_is_clean_error(self, images, capsys):
        corpus_path, index_path = images
        assert main(["search", corpus_path, index_path, "(((" ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_search_metrics_flag(self, images, capsys):
        corpus_path, index_path = images
        assert main(["search", corpus_path, index_path, "<title>",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "query metrics:" in out
        assert "caches:" in out
        assert "postings:" in out

    def test_search_trace_prints_span_tree(self, images, capsys):
        corpus_path, index_path = images
        assert main(["search", corpus_path, index_path, "Clinton",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "search" in out
        assert "postings_fetch" in out
        assert "verify" in out
        assert "leaf spans cover" in out


class TestExplain:
    def test_explain_prints_plans(self, images, capsys):
        corpus_path, index_path = images
        assert main(["explain", corpus_path, index_path,
                     "(Bill|William).*Clinton"]) == 0
        out = capsys.readouterr().out
        assert "LogicalPlan" in out
        assert "PhysicalPlan" in out

    def test_explain_analyze_prints_actuals(self, images, capsys):
        corpus_path, index_path = images
        assert main(["explain", corpus_path, index_path, "Clinton",
                     "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "analyze:" in out
        assert "est " in out and "actual" in out
        assert "candidates: actual" in out
        assert "vs estimated" in out
        assert "query metrics:" in out


    def test_explain_trace_prints_plan_spans(self, images, capsys):
        corpus_path, index_path = images
        assert main(["explain", corpus_path, index_path, "Clinton",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "parse" in out
        assert "physical_plan" in out

    def test_explain_analyze_trace_runs_full_query(
        self, images, capsys
    ):
        corpus_path, index_path = images
        assert main(["explain", corpus_path, index_path, "Clinton",
                     "--analyze", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "analyze:" in out
        assert "trace:" in out
        assert "verify" in out


class TestMetrics:
    def test_prometheus_text(self, images, capsys):
        corpus_path, index_path = images
        assert main(["metrics", corpus_path, index_path,
                     "--pattern", "<title>"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE free_queries_total counter" in out
        assert "# HELP" in out
        assert "free_query_seconds_bucket" in out
        assert 'le="+Inf"' in out

    def test_check_validates_exposition(self, images, capsys):
        corpus_path, index_path = images
        assert main(["metrics", corpus_path, index_path,
                     "--pattern", "<title>", "--check"]) == 0
        err = capsys.readouterr().err
        assert "metrics: OK" in err

    def test_json_snapshot(self, images, capsys):
        import json

        corpus_path, index_path = images
        assert main(["metrics", corpus_path, index_path,
                     "--pattern", "<title>", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["free_queries_total"]["type"] == "counter"
        samples = payload["free_queries_total"]["samples"]
        assert sum(samples.values()) >= 1

    def test_bad_repeats_is_usage_error(self, images, capsys):
        corpus_path, index_path = images
        assert main(["metrics", corpus_path, index_path,
                     "--repeats", "0"]) == 2


class TestEstimate:
    def test_estimate_prints_interval(self, images, capsys):
        corpus_path, _ = images
        assert main(["estimate", corpus_path, "<title>",
                     "--sample", "20"]) == 0
        out = capsys.readouterr().out
        assert "CI" in out and "matching units expected" in out

    def test_estimate_zero_for_absent(self, images, capsys):
        corpus_path, _ = images
        assert main(["estimate", corpus_path, "qqqqzzz"]) == 0
        assert "~ 0.0000" in capsys.readouterr().out


class TestBench:
    def test_bench_table3_small(self, capsys):
        assert main(["bench", "--pages", "60",
                     "--experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "multigram" in out

    def test_bench_repeat_small(self, capsys):
        assert main(["bench", "--pages", "60", "--experiment", "repeat",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "repeat" in out
        assert "plan_cache_hits" in out
        assert "full-cache" in out

    def test_bench_core_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "BENCH_free_core.json")
        assert main(["bench", "--pages", "60", "--experiment", "core",
                     "--out", out_path]) == 0
        text = capsys.readouterr().out
        assert "core:" in text and "p95=" in text
        with open(out_path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["schema"] == "free-bench-core/1"
        assert record["name"] == "free_core"
        assert set(record["latency_seconds"]) == {"p50", "p95", "mean"}
        assert 0.0 <= record["cache_hit_rate"] <= 1.0
        assert record["candidate_ratio"] >= 0.0
        assert record["index_build_seconds"] > 0.0


class TestNoArgs:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestCheck:
    def test_clean_index_passes(self, images, capsys):
        _, index_path = images
        assert main(["check", "--index", index_path]) == 0
        out = capsys.readouterr().out
        assert "index invariants" in out
        assert "plan soundness" in out
        assert "check: OK" in out

    def test_corrupt_index_fails(self, images, tmp_path, capsys):
        _, index_path = images
        from repro.index.postings import PostingsList, encode_gaps
        from repro.index.serialize import load_index, save_index

        index = load_index(index_path)
        key = next(iter(index.keys()))
        # Forge an out-of-range doc id behind the loaded image's back.
        index._postings[key] = PostingsList.from_ids(
            [index.n_docs + 7]
        )
        bad_path = str(tmp_path / "bad.idx")
        save_index(index, bad_path)
        assert main(["check", "--index", bad_path,
                     "--pattern", "clinton"]) == 1
        out = capsys.readouterr().out
        assert "IDX005" in out
        assert "check: FAILED" in out

    def test_lint_only_passes_on_repo(self, capsys):
        assert main(["check", "--lint"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out

    def test_everything_disabled_is_usage_error(self, capsys):
        assert main(["check", "--no-concurrency"]) == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_bare_check_runs_concurrency_gate(self, capsys):
        # --concurrency defaults on: a bare `free check` is the
        # zero-findings CONC/RES gate over the installed package.
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "concurrency & lifecycle" in out
        assert "check: OK" in out

    def test_format_sarif(self, capsys):
        import json

        assert main(["check", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "free-check"
        assert payload["runs"][0]["results"] == []
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert rule_ids == set()  # no findings -> no referenced rules

    def test_json_output(self, images, capsys):
        import json

        _, index_path = images
        assert main(["check", "--index", index_path,
                     "--pattern", "clinton", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "index invariants" in payload["sections"]
        assert "clinton" in payload["justifications"]

    def test_verbose_prints_justifications(self, images, capsys):
        _, index_path = images
        assert main(["check", "--index", index_path,
                     "--pattern", "motorola", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "justifications for" in out

    def test_build_report_auto_discovered(self, images, capsys):
        _, index_path = images
        assert os.path.exists(index_path + ".build.json")
        assert main(["check", "--index", index_path]) == 0
        out = capsys.readouterr().out
        assert "build report" in out
        assert "check: OK" in out

    def test_doctored_build_report_fails(self, images, tmp_path,
                                         capsys):
        import json

        _, index_path = images
        with open(index_path + ".build.json", encoding="utf-8") as f:
            payload = json.load(f)
        payload["n_keys"] += 5
        bad_path = str(tmp_path / "doctored.build.json")
        with open(bad_path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        assert main(["check", "--index", index_path,
                     "--build-report", bad_path]) == 1
        out = capsys.readouterr().out
        assert "BLD001" in out
        assert "check: FAILED" in out


class TestCpusText:
    """record['cpu_count'] may be None: os.cpu_count() can fail."""

    def test_known_count(self):
        from repro.cli import _cpus_text

        assert _cpus_text(8) == "8 cpus"

    def test_none_count(self):
        from repro.cli import _cpus_text

        assert _cpus_text(None) == "unknown cpus"

    def test_none_cpu_count_survives_the_bench_record(self):
        import json

        # The sharded bench record must serialize a None cpu_count
        # (JSON null), not crash or coerce it.
        record = {"cpu_count": None}
        assert json.loads(json.dumps(record))["cpu_count"] is None

    def test_bench_sharded_renders_none_cpu_count(
        self, monkeypatch, capsys, tmp_path
    ):
        from repro import cli

        record = {
            "speedup": {"p50": 1.5},
            "io_speedup": {"p50": 2.0},
            "baseline_latency_seconds": {"p50": 0.01},
            "sharded_latency_seconds": {"p50": 0.005},
            "cpu_count": None,
        }
        monkeypatch.setattr(
            cli, "default_workload", lambda n_pages=None: None
        )
        monkeypatch.setattr(
            cli.runner_mod, "write_bench_sharded",
            lambda *args, **kwargs: record,
        )
        out = str(tmp_path / "b.json")
        assert main(["bench", "--experiment", "sharded",
                     "--out", out]) == 0
        text = capsys.readouterr().out
        assert "unknown cpus" in text
        assert "None" not in text


class TestIngestCli:
    DOCS = [
        "the cat sat on the mat",
        "william jefferson clinton",
        "motorola mpc750 chip",
        "nothing to see here",
        "the cat ran fast",
        "buy this mp3 song now",
        "another page of words",
        "clinton spoke again",
    ]

    def _write_log(self, path, lines):
        with open(path, "w", encoding="utf-8") as out:
            for line in lines:
                out.write(line + "\n")

    def _matched_texts(self, capsys):
        """(summary line, sorted matched texts) from search output."""
        out = capsys.readouterr().out
        lines = out.splitlines()
        texts = sorted(
            line.split(": ", 1)[1]
            for line in lines
            if line.startswith("  unit ")
        )
        return lines[0].split(" in ")[0], texts

    def test_ingest_compact_search_round_trip(self, tmp_path, capsys):
        log = str(tmp_path / "docs.log")
        self._write_log(log, self.DOCS)
        ingest_dir = str(tmp_path / "idx")
        assert main(["ingest", ingest_dir, log,
                     "--memtable-docs", "2"]) == 0
        out = capsys.readouterr().out
        assert f"+{len(self.DOCS)} docs, -0 docs" in out
        assert main(["search", ingest_dir, "clinton"]) == 0
        assert "2 matches" in capsys.readouterr().out
        assert main(["compact", ingest_dir]) == 0
        assert "free compact: merged" in capsys.readouterr().out
        assert main(["search", ingest_dir, "clinton"]) == 0
        assert "2 matches" in capsys.readouterr().out

    def test_deletes_then_compact_equals_one_shot_build(
        self, tmp_path, capsys
    ):
        """The acceptance round trip at the CLI level: ingest with
        interleaved deletes, compact to one segment, and answer
        byte-identically to a one-shot ingest of the survivors."""
        # Doc ids are assigned in log order: 0..7; delete 1 and 4.
        interleaved = (
            self.DOCS[:3] + ["!delete 1"] + self.DOCS[3:6]
            + ["!delete 4"] + self.DOCS[6:]
        )
        survivors = [
            text for position, text in enumerate(self.DOCS)
            if position not in (1, 4)
        ]
        dir_a = str(tmp_path / "interleaved")
        dir_b = str(tmp_path / "oneshot")
        log_a = str(tmp_path / "a.log")
        log_b = str(tmp_path / "b.log")
        self._write_log(log_a, interleaved)
        self._write_log(log_b, survivors)
        assert main(["ingest", dir_a, log_a,
                     "--memtable-docs", "2"]) == 0
        assert main(["compact", dir_a]) == 0
        assert main(["ingest", dir_b, log_b, "--seal"]) == 0
        assert main(["compact", dir_b]) == 0
        capsys.readouterr()
        for pattern in ("cat", "clinton", "mp3", "th. cat", "zzz"):
            assert main(["search", dir_a, pattern]) == 0
            summary_a, texts_a = self._matched_texts(capsys)
            assert main(["search", dir_b, pattern]) == 0
            summary_b, texts_b = self._matched_texts(capsys)
            assert summary_a == summary_b
            assert texts_a == texts_b

    def test_ingest_resumes_offsets(self, tmp_path, capsys):
        log = str(tmp_path / "docs.log")
        self._write_log(log, self.DOCS[:3])
        ingest_dir = str(tmp_path / "idx")
        assert main(["ingest", ingest_dir, log, "--seal"]) == 0
        capsys.readouterr()
        assert main(["ingest", ingest_dir, log]) == 0
        assert "+0 docs, -0 docs" in capsys.readouterr().out

    def test_explain_on_ingest_dir(self, tmp_path, capsys):
        log = str(tmp_path / "docs.log")
        self._write_log(log, self.DOCS)
        ingest_dir = str(tmp_path / "idx")
        assert main(["ingest", ingest_dir, log,
                     "--memtable-docs", "4"]) == 0
        capsys.readouterr()
        assert main(["explain", ingest_dir, "clinton"]) == 0
        out = capsys.readouterr().out
        assert "segment" in out

    def test_check_gates_ingest_dir(self, tmp_path, capsys):
        log = str(tmp_path / "docs.log")
        self._write_log(log, self.DOCS + ["!delete 3"])
        ingest_dir = str(tmp_path / "idx")
        assert main(["ingest", ingest_dir, log,
                     "--memtable-docs", "2"]) == 0
        capsys.readouterr()
        assert main(["check", "--index", ingest_dir,
                     "--pattern", "clinton"]) == 0
        out = capsys.readouterr().out
        assert "index invariants" in out
        assert "check: OK" in out

    def test_search_missing_pattern_is_clean_error(
        self, tmp_path, capsys
    ):
        # Two-arg form where the first is not a directory.
        assert main(["search", str(tmp_path / "nope.img"),
                     "clinton"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compact_missing_dir_is_clean_error(self, tmp_path, capsys):
        assert main(["compact", str(tmp_path / "missing")]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeCli:
    def test_bad_worker_count_is_a_clean_error(self, images, capsys):
        corpus_path, index_path = images
        assert main(["serve", corpus_path, index_path,
                     "--workers", "0"]) == 1
        assert "workers" in capsys.readouterr().err

    def test_bench_serve_branch_renders_summary(
        self, monkeypatch, capsys, tmp_path
    ):
        from repro import cli

        record = {
            "phases": {
                "closed": {
                    "qps": 123.4,
                    "latency_seconds": {
                        "p50": 0.004, "p95": 0.009, "p99": 0.02,
                    },
                },
                "open": {},
            },
            "service": {"shed": 2, "timeouts": 1},
            "n_5xx": 0,
        }
        monkeypatch.setattr(
            cli, "default_workload", lambda n_pages=None: None
        )
        monkeypatch.setattr(
            cli.runner_mod, "write_bench_serve",
            lambda *args, **kwargs: record,
        )
        out = str(tmp_path / "BENCH_free_serve.json")
        assert main(["bench", "--experiment", "serve",
                     "--out", out]) == 0
        text = capsys.readouterr().out
        assert "serve: sustained 123 qps" in text
        assert "shed 2 timeouts 1 5xx 0" in text
