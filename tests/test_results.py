"""Result-record tests: Match, SearchReport, frequency ranking."""

import pytest

from repro.engine.results import Match, SearchReport, frequency_ranked


class TestMatch:
    def test_span(self):
        match = Match(3, 5, 9, "abcd")
        assert match.span == (5, 9)

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Match(0, 5, 3, "x")

    def test_zero_length_allowed(self):
        assert Match(0, 4, 4, "").span == (4, 4)

    def test_frozen(self):
        match = Match(0, 0, 1, "a")
        with pytest.raises(AttributeError):
            match.start = 2


class TestSearchReport:
    def test_total_seconds(self):
        report = SearchReport("p", "free", plan_seconds=0.5,
                              execute_seconds=1.5)
        assert report.total_seconds == 2.0

    def test_n_matches_counter_not_list(self):
        report = SearchReport("p", "free")
        report.n_matches_found = 7
        assert report.n_matches == 7
        assert report.matches == []

    def test_match_strings(self):
        report = SearchReport("p", "free")
        report.matches = [Match(0, 0, 1, "a"), Match(1, 2, 3, "b")]
        assert report.match_strings() == ["a", "b"]

    def test_summary_mentions_mode(self):
        scan = SearchReport("p", "scan", used_full_scan=True)
        assert "full scan" in scan.summary()
        indexed = SearchReport("p", "free")
        assert "index" in indexed.summary()


class TestFrequencyRanked:
    def make(self, *texts):
        return [Match(i, 0, len(t), t) for i, t in enumerate(texts)]

    def test_ranking(self):
        matches = self.make("x", "y", "x", "x", "y", "z")
        ranked = frequency_ranked(matches)
        assert ranked[0] == ("x", 3)
        assert ranked[1] == ("y", 2)
        assert ranked[2] == ("z", 1)

    def test_top_limits(self):
        matches = self.make("a", "b", "a", "c")
        assert len(frequency_ranked(matches, top=2)) == 2

    def test_empty(self):
        assert frequency_ranked([]) == []

    def test_single(self):
        assert frequency_ranked(self.make("only")) == [("only", 1)]
