"""Differential property harness for the ingest lifecycle.

Random interleavings of add / delete / seal / compact must leave the
directory answering exactly like a flat one-shot FreeEngine over the
surviving corpus: candidate lists are sound over-approximations of the
brute-force truth, and search results are byte-identical (same doc,
same span, same text) — before *and* after a close/reopen cycle, so
recovery is inside the property, not a separate best-effort test.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.corpus.store import InMemoryCorpus
from repro.engine.free import FreeEngine
from repro.index.builder import MultigramIndexBuilder
from repro.index.ingest import IngestDirectory
from repro.index.segmented import SegmentedFreeEngine
from repro.regex import Matcher
from repro.obs.registry import MetricsRegistry
from repro.plan.logical import LogicalPlan

BUILDER = MultigramIndexBuilder(threshold=0.5, max_gram_len=3)

PATTERNS = ["ab", "a+b", "(a|b)<", "<a?b"]

TEXT = st.text(alphabet="ab<", min_size=0, max_size=12)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), TEXT),
        st.tuples(st.just("del"), st.integers(min_value=0,
                                              max_value=99)),
        st.tuples(st.just("seal"), st.just(0)),
        st.tuples(st.just("compact"), st.just(0)),
    ),
    min_size=1,
    max_size=25,
)


def apply_ops(directory, ops):
    """Drive the directory and a dict model through the same ops."""
    model = {}
    for op, arg in ops:
        if op == "add":
            doc_id = directory.add(arg)
            assert doc_id not in model
            model[doc_id] = arg
        elif op == "del":
            live = sorted(model)
            if live:
                victim = live[arg % len(live)]
                assert directory.delete(victim)
                del model[victim]
            else:
                assert not directory.delete(arg)
        elif op == "seal":
            directory.seal()
        elif op == "compact":
            directory.compact()
    return model


def check_candidates_sound(directory, model):
    """candidates ⊇ the brute-force matching doc set, and ⊆ live docs."""
    live = set(model)
    for pattern in PATTERNS:
        matcher = Matcher(pattern)
        truth = {
            doc_id for doc_id, text in model.items()
            if matcher.count(text) > 0
        }
        candidates = directory.index.candidates(
            LogicalPlan.from_pattern(pattern)
        )
        assert candidates is not None  # sparse ids: never "scan all"
        assert truth <= set(candidates) <= live
        assert candidates == sorted(candidates)


def check_search_identical(directory, model):
    """Search results equal a flat rebuild of the surviving corpus."""
    survivors = sorted(model)
    dense = {doc_id: ordinal for ordinal, doc_id in enumerate(survivors)}
    seg_engine = SegmentedFreeEngine(
        directory.corpus, directory.index, registry=MetricsRegistry()
    )
    if not survivors:
        with seg_engine:
            for pattern in PATTERNS:
                assert seg_engine.search(pattern).n_matches == 0
        return
    flat_corpus = InMemoryCorpus.from_texts(
        [model[doc_id] for doc_id in survivors]
    )
    flat_index = BUILDER.build(flat_corpus)
    with seg_engine, FreeEngine(flat_corpus, flat_index) as flat:
        for pattern in PATTERNS:
            a = seg_engine.search(pattern)
            b = flat.search(pattern)
            assert sorted(
                (dense[m.doc_id], m.start, m.end, m.text)
                for m in a.matches
            ) == sorted(
                (m.doc_id, m.start, m.end, m.text) for m in b.matches
            )
            assert a.n_matches == b.n_matches


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_ingest_differential_property(ops):
    tmpdir = tempfile.mkdtemp(prefix="free-ingest-diff-")
    try:
        with IngestDirectory(
            tmpdir,
            builder=BUILDER,
            memtable_docs=3,
            fanout=2,
            auto_compact=True,
            registry=MetricsRegistry(),
        ) as directory:
            model = apply_ops(directory, ops)
            check_candidates_sound(directory, model)
            check_search_identical(directory, model)
            generation = directory.generation
        # Recovery is part of the property: reopen and re-verify.
        with IngestDirectory(
            tmpdir,
            builder=BUILDER,
            memtable_docs=3,
            fanout=2,
            registry=MetricsRegistry(),
        ) as reopened:
            assert reopened.generation == generation
            survivors = {
                unit.doc_id: unit.text for unit in reopened.corpus
            }
            assert survivors == model
            check_candidates_sound(reopened, model)
            check_search_identical(reopened, model)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


@settings(max_examples=25, deadline=None)
@given(ops=OPS, crash_after=st.integers(min_value=0, max_value=24))
def test_ingest_recovery_prefix_property(ops, crash_after):
    """Killing the process after any prefix of the op stream recovers
    exactly the acknowledged prefix state."""
    tmpdir = tempfile.mkdtemp(prefix="free-ingest-crash-")
    prefix = ops[: crash_after % (len(ops) + 1)]
    try:
        directory = IngestDirectory(
            tmpdir,
            builder=BUILDER,
            memtable_docs=3,
            fanout=2,
            auto_compact=True,
            registry=MetricsRegistry(),
        )
        model = apply_ops(directory, prefix)
        del directory  # no close(): simulate a kill
        with IngestDirectory(
            tmpdir,
            builder=BUILDER,
            memtable_docs=3,
            fanout=2,
            registry=MetricsRegistry(),
        ) as reopened:
            survivors = {
                unit.doc_id: unit.text for unit in reopened.corpus
            }
            assert survivors == model
            check_search_identical(reopened, model)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
