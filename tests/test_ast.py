"""AST node tests: construction, flattening, rendering, traversal."""

import pytest

from repro.regex import ast
from repro.regex.charclass import DOT, CharClass
from repro.regex.parser import parse


class TestConstruction:
    def test_concat_flattens(self):
        node = ast.Concat((
            ast.Concat((ast.Char.literal("a"), ast.Char.literal("b"))),
            ast.Char.literal("c"),
        ))
        assert len(node.parts) == 3

    def test_concat_drops_empty(self):
        node = ast.Concat((ast.Empty(), ast.Char.literal("a")))
        assert len(node.parts) == 1

    def test_alt_flattens(self):
        node = ast.Alt((
            ast.Alt((ast.Char.literal("a"), ast.Char.literal("b"))),
            ast.Char.literal("c"),
        ))
        assert len(node.options) == 3

    def test_smart_concat_unwraps_single(self):
        assert ast.concat(ast.Char.literal("a")) == ast.Char.literal("a")

    def test_smart_concat_empty(self):
        assert isinstance(ast.concat(), ast.Empty)

    def test_smart_alt_unwraps_single(self):
        assert ast.alt(ast.Char.literal("a")) == ast.Char.literal("a")

    def test_literal_string(self):
        node = ast.literal_string("abc")
        assert node == parse("abc")

    def test_literal_string_single(self):
        assert ast.literal_string("a") == ast.Char.literal("a")

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            ast.Repeat(ast.Char.literal("a"), -1, 2)
        with pytest.raises(ValueError):
            ast.Repeat(ast.Char.literal("a"), 3, 2)


class TestEquality:
    def test_structural_equality(self):
        assert parse("a(b|c)") == parse("a(b|c)")
        assert parse("a(b|c)") != parse("a(c|b)")

    def test_hashable(self):
        nodes = {parse("ab"), parse("ab"), parse("cd")}
        assert len(nodes) == 2

    def test_char_vs_class(self):
        assert ast.Char.literal("a") == ast.Char(CharClass({"a"}))
        assert ast.Char.literal("a") != ast.Char(CharClass({"a", "b"}))


class TestRendering:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("abc", "abc"),
            ("a|b", "a|b"),
            ("(a|b)c", "(a|b)c"),
            ("a(b|c)*", "a(b|c)*"),
            ("(ab)+", "(ab)+"),
            (r"\.", r"\."),
            ("a{2,3}", "a{2,3}"),
            ("a{2,}", "a{2,}"),
            ("a{2}", "a{2}"),
        ],
    )
    def test_to_pattern(self, pattern, expected):
        assert parse(pattern).to_pattern() == expected

    def test_dot_renders(self):
        assert ast.Char(DOT).to_pattern() == "."

    def test_control_char_escaped(self):
        assert ast.Char.literal("\n").to_pattern() == "\\n"

    def test_quantified_empty_renders_reparseable(self):
        node = ast.Star(ast.Empty())
        assert parse(node.to_pattern()) is not None

    def test_nested_quantifier_parenthesized(self):
        node = ast.Star(ast.Star(ast.Char.literal("a")))
        text = node.to_pattern()
        assert parse(text) == node

    def test_negated_class_render_roundtrip(self):
        node = parse("[^abc]")
        assert parse(node.to_pattern()) == node

    def test_repr_contains_pattern(self):
        assert "a|b" in repr(parse("a|b"))


class TestTraversal:
    def test_walk_preorder(self):
        node = parse("a(b|c)")
        kinds = [type(n).__name__ for n in ast.walk(node)]
        assert kinds[0] == "Concat"
        assert "Alt" in kinds
        assert kinds.count("Char") == 3

    def test_children(self):
        node = parse("ab|c")
        assert len(node.children()) == 2
        assert parse("a").children() == ()

    def test_walk_counts_nodes(self):
        node = parse("(a|b)*c{2}")
        assert sum(1 for _ in ast.walk(node)) >= 6
