"""CONC rule tests: each rule fires on a minimal snippet and on its
checked-in fixture, stays silent on the fixed variant, and ships a
machine-checkable justification."""

import os
import re
import textwrap

import pytest

from repro.analysis import check_concurrency_paths
from repro.analysis.conc_checks import RULES, check_source
from repro.analysis.runner import default_lint_root
from repro.errors import AnalysisError

FIXTURES = os.path.join(
    os.path.dirname(__file__), "fixtures", "concurrency"
)

CONC_RULES = sorted(RULES)


def run(snippet):
    return check_source(textwrap.dedent(snippet), "snippet.py")


def codes(hits):
    return [finding.code for finding, _ in hits]


def read_fixture(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        return f.read()


class TestFixturePairs:
    @pytest.mark.parametrize("rule", CONC_RULES)
    def test_bad_fixture_fires_exactly_its_rule(self, rule):
        name = rule.lower() + "_bad.py"
        hits = check_source(read_fixture(name), name)
        assert hits, f"{name} produced no findings"
        assert set(codes(hits)) == {rule}

    @pytest.mark.parametrize("rule", CONC_RULES)
    def test_fixed_fixture_is_clean(self, rule):
        name = rule.lower() + "_fixed.py"
        assert check_source(read_fixture(name), name) == []

    @pytest.mark.parametrize("rule", CONC_RULES)
    def test_justifications_are_machine_checkable(self, rule):
        name = rule.lower() + "_bad.py"
        hits = check_source(read_fixture(name), name)
        for _finding, justification in hits:
            assert justification.rule == rule
            rendered = justification.render()
            # Same contract as the PLAN00x prover steps:
            # "<RULE>: <fact>  [<evidence>]".
            assert re.match(
                rf"^{rule}: .+  \[.+\]$", rendered
            ), rendered


class TestBlockingOnLoop:
    def test_direct_blocking_call(self):
        hits = run("""
        import time

        async def handler():
            time.sleep(1)
        """)
        assert codes(hits) == ["CONC001"]

    def test_transitive_through_sync_helper(self):
        hits = run("""
        import subprocess

        def helper():
            subprocess.run(["true"])

        async def handler():
            helper()
        """)
        assert codes(hits) == ["CONC001"]
        evidence = hits[0][1].evidence
        assert "handler" in evidence and "helper" in evidence

    def test_engine_receiver_heuristic(self):
        hits = run("""
        async def handler(engine, pattern):
            return engine.search(pattern)
        """)
        assert codes(hits) == ["CONC001"]

    def test_aliased_import_resolved(self):
        hits = run("""
        import time as t

        async def handler():
            t.sleep(1)
        """)
        assert codes(hits) == ["CONC001"]

    def test_sync_function_not_flagged(self):
        hits = run("""
        import time

        def handler():
            time.sleep(1)
        """)
        assert hits == []

    def test_executor_hop_is_clean(self):
        hits = run("""
        async def handler(loop, engine, pattern):
            return await loop.run_in_executor(
                None, engine.search, pattern
            )
        """)
        assert hits == []


class TestAwaitUnderLock:
    def test_with_lock_spanning_await(self):
        hits = run("""
        class C:
            async def get(self, loader):
                with self._lock:
                    return await loader()
        """)
        assert codes(hits) == ["CONC002"]

    def test_sync_acquire_in_async(self):
        hits = run("""
        class C:
            async def get(self):
                self._lock.acquire()
        """)
        assert codes(hits) == ["CONC002"]

    def test_async_with_is_clean(self):
        hits = run("""
        class C:
            async def get(self, loader):
                async with self._lock:
                    return await loader()
        """)
        assert hits == []

    def test_sync_lock_without_await_is_clean(self):
        hits = run("""
        class C:
            async def get(self):
                with self._lock:
                    return self._entries.copy()
        """)
        assert hits == []


class TestForkAfterThread:
    def test_fork_on_path_after_start(self):
        hits = run("""
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def serve(target):
            worker_thread = threading.Thread(target=target)
            worker_thread.start()
            return ProcessPoolExecutor()
        """)
        assert codes(hits) == ["CONC003"]

    def test_fork_before_start_is_clean(self):
        hits = run("""
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def serve(target):
            pool = ProcessPoolExecutor()
            worker_thread = threading.Thread(target=target)
            worker_thread.start()
            return pool
        """)
        assert hits == []

    def test_transitive_fork_through_helper(self):
        hits = run("""
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def make_pool():
            return ProcessPoolExecutor()

        def serve(target):
            worker_thread = threading.Thread(target=target)
            worker_thread.start()
            return make_pool()
        """)
        assert codes(hits) == ["CONC003"]

    def test_branch_exclusive_paths_are_clean(self):
        hits = run("""
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def serve(target, use_threads):
            if use_threads:
                worker_thread = threading.Thread(target=target)
                worker_thread.start()
                return None
            return ProcessPoolExecutor()
        """)
        assert hits == []


class TestCrossContextWrites:
    def test_unlocked_write_from_both_contexts(self):
        hits = run(read_fixture("conc004_bad.py"))
        assert codes(hits) == ["CONC004"]
        assert "total" in hits[0][0].message

    def test_lock_on_both_sides_is_clean(self):
        hits = run("""
        import threading

        class S:
            def spawn(self):
                threading.Thread(target=self._work).start()

            def _work(self):
                with self._lock:
                    self.n = 1

            async def tick(self):
                with self._lock:
                    self.n = 2
        """)
        assert hits == []

    def test_write_reached_through_self_call_closure(self):
        hits = run("""
        import threading

        class S:
            def spawn(self):
                threading.Thread(target=self._work).start()

            def _work(self):
                self._bump()

            def _bump(self):
                self.n = 1

            async def tick(self):
                self.n = 2
        """)
        # _bump is executor-reachable through the self-call closure.
        assert codes(hits) == ["CONC004"]

    def test_disjoint_attributes_are_clean(self):
        hits = run("""
        import threading

        class S:
            def spawn(self):
                threading.Thread(target=self._work).start()

            def _work(self):
                self.worker_n = 1

            async def tick(self):
                self.loop_n = 2
        """)
        assert hits == []


class TestUnboundedLabels:
    def test_parameter_label_fires(self):
        hits = run("""
        class M:
            def observe(self, endpoint):
                self.counter.labels(endpoint=endpoint).inc()
        """)
        assert codes(hits) == ["CONC005"]

    def test_membership_clamp_is_clean(self):
        hits = run("""
        VOCAB = frozenset({"a", "b"})

        class M:
            def observe(self, endpoint):
                label = endpoint if endpoint in VOCAB else "other"
                self.counter.labels(endpoint=label).inc()
        """)
        assert hits == []

    def test_literal_loop_target_is_clean(self):
        hits = run("""
        class M:
            def observe(self):
                for mode in ("hit", "miss"):
                    self.counter.labels(mode=mode).inc()
        """)
        assert hits == []

    def test_str_conversion_is_bounded(self):
        hits = run("""
        class M:
            def observe(self, code):
                self.counter.labels(status=str(code)).inc()
        """)
        assert hits == []

    def test_fstring_label_fires(self):
        hits = run("""
        class M:
            def observe(self, pattern):
                self.counter.labels(q=f"{pattern}").inc()
        """)
        assert codes(hits) == ["CONC005"]

    def test_identity_label_fires_even_when_bounded(self):
        # str(...) passes the boundedness grammar, but per-request
        # identities are banned by NAME: one series per request.
        hits = run("""
        class M:
            def observe(self, trace_id):
                self.histogram.labels(trace_id=str(trace_id)).observe(1)
        """)
        assert codes(hits) == ["CONC005"]
        finding, _justification = hits[0]
        assert "exemplar" in finding.message

    def test_identity_label_fires_for_literal_value(self):
        # even a constant value is wrong under an identity label name
        hits = run("""
        class M:
            def observe(self):
                self.counter.labels(request_id="fixed").inc()
        """)
        assert codes(hits) == ["CONC005"]

    def test_all_identity_names_banned(self):
        for name in (
            "trace_id", "span_id", "request_id", "query_id",
            "correlation_id",
        ):
            hits = run(f"""
            class M:
                def observe(self, value):
                    self.counter.labels({name}=str(value)).inc()
            """)
            assert codes(hits) == ["CONC005"], name

    def test_exemplar_kwarg_is_the_sanctioned_channel(self):
        hits = run("""
        class M:
            def observe(self, trace_id, elapsed):
                child = self.histogram.labels(endpoint="/search")
                child.observe(elapsed, exemplar={"trace_id": trace_id})
        """)
        assert hits == []


class TestSwallowedOnClose:
    def test_broad_except_drop_in_close(self):
        hits = run(read_fixture("conc006_bad.py"))
        assert codes(hits) == ["CONC006"]

    def test_suppress_exception_in_shutdown(self):
        hits = run("""
        import contextlib

        class C:
            def shutdown(self):
                with contextlib.suppress(Exception):
                    self.conn.close()
        """)
        assert codes(hits) == ["CONC006"]

    def test_narrow_except_is_clean(self):
        hits = run(read_fixture("conc006_fixed.py"))
        assert hits == []

    def test_broad_except_outside_close_path_is_clean(self):
        hits = run("""
        class C:
            def lookup(self):
                try:
                    return self.table["k"]
                except Exception:
                    pass
        """)
        assert hits == []

    def test_broad_except_that_records_is_clean(self):
        hits = run("""
        class C:
            def close(self):
                try:
                    self.conn.flush()
                except Exception as exc:
                    self.errors.append(exc)
        """)
        assert hits == []


class TestEngineContract:
    def test_rule_registry_complete(self):
        assert CONC_RULES == [
            "CONC001", "CONC002", "CONC003", "CONC004", "CONC005",
            "CONC006",
        ]

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            check_source("def f(:\n", "bad.py")

    def test_findings_carry_filename_and_position(self):
        hits = run("""
        import time

        async def handler():
            time.sleep(1)
        """)
        finding = hits[0][0]
        assert finding.subject == "snippet.py"
        assert re.match(r"^\d+:\d+$", finding.location)

    def test_repo_is_clean(self):
        # The CI gate: zero unsuppressed CONC/RES findings over the
        # installed package.
        findings, _ = check_concurrency_paths([default_lint_root()])
        assert findings == []
