"""PCY hash-filter tests: identical key sets, real dictionary savings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.store import InMemoryCorpus
from repro.corpus.synthesis import build_corpus
from repro.index.builder import MultigramIndexBuilder, build_multigram_index
from repro.index.pcy import PCYHashFilter
from repro.index.stats import IndexStats


class TestFilterUnit:
    def test_counts_occurrences(self):
        f = PCYHashFilter(bits=10, threshold=2)
        f.add("ab")
        assert f.surely_useful("ab")
        f.add("ab")
        f.add("ab")
        assert not f.surely_useful("ab")

    def test_unseen_gram_is_surely_useful(self):
        f = PCYHashFilter(bits=10, threshold=1)
        assert f.surely_useful("zz")

    def test_collisions_only_weaken(self):
        """A colliding bucket can flip useful->unknown, never the
        reverse, so soundness is preserved."""
        f = PCYHashFilter(bits=8, threshold=0)
        for i in range(5000):
            f.add(f"gram{i}")
        # any gram that still reads 0 genuinely has no occurrences
        probe = "never-added-gram"
        if f.surely_useful(probe):
            assert True  # zero bucket: fine
        # saturation is high with 256 buckets and 5000 adds
        assert f.saturation > 0.5

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            PCYHashFilter(bits=2, threshold=1)
        with pytest.raises(ValueError):
            PCYHashFilter(bits=40, threshold=1)

    def test_added_counter(self):
        f = PCYHashFilter(bits=10, threshold=5)
        for _ in range(7):
            f.add("x")
        assert f.added == 7


class TestKeySetIdentity:
    """The filter must never change the mined key set."""

    def test_on_synthetic_corpus(self):
        corpus = build_corpus(n_pages=60, seed=21)
        plain = build_multigram_index(corpus, threshold=0.2, max_gram_len=6)
        pcy = build_multigram_index(
            corpus, threshold=0.2, max_gram_len=6, hash_filter_bits=16
        )
        assert set(plain.keys()) == set(pcy.keys())
        for key in plain.keys():
            assert plain.lookup(key) == pcy.lookup(key)

    def test_tiny_buckets_still_correct(self):
        """Heavy collisions degrade the savings, never the answer."""
        corpus = build_corpus(n_pages=40, seed=22)
        plain = build_multigram_index(corpus, threshold=0.3, max_gram_len=5)
        pcy = build_multigram_index(
            corpus, threshold=0.3, max_gram_len=5, hash_filter_bits=8
        )
        assert set(plain.keys()) == set(pcy.keys())

    @settings(max_examples=40, deadline=None)
    @given(
        texts=st.lists(
            st.text(alphabet="abcd", min_size=1, max_size=15),
            min_size=1,
            max_size=8,
        ),
        c=st.sampled_from([0.2, 0.5]),
        bits=st.sampled_from([8, 12]),
    )
    def test_property_identity(self, texts, c, bits):
        corpus = InMemoryCorpus.from_texts(texts)
        plain = build_multigram_index(corpus, threshold=c, max_gram_len=4)
        pcy = build_multigram_index(
            corpus, threshold=c, max_gram_len=4, hash_filter_bits=bits
        )
        assert set(plain.keys()) == set(pcy.keys())


class TestSavings:
    def test_filter_reduces_exact_counting(self):
        corpus = build_corpus(n_pages=80, seed=23)
        plain_stats = IndexStats(kind="multigram", n_docs=len(corpus))
        pcy_stats = IndexStats(kind="multigram", n_docs=len(corpus))
        MultigramIndexBuilder(0.1, 8).select_keys(corpus, plain_stats)
        MultigramIndexBuilder(0.1, 8, hash_filter_bits=18).select_keys(
            corpus, pcy_stats
        )
        # Later passes (where the filter is armed) must classify a
        # meaningful share of grams without dictionary entries.
        assert sum(pcy_stats.hash_filtered) > 0
        assert sum(pcy_stats.pass_candidates) < sum(
            plain_stats.pass_candidates
        )

    def test_stats_zero_without_filter(self):
        corpus = build_corpus(n_pages=20, seed=24)
        stats = IndexStats(kind="multigram", n_docs=len(corpus))
        MultigramIndexBuilder(0.2, 5).select_keys(corpus, stats)
        assert all(count == 0 for count in stats.hash_filtered)
