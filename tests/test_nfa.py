"""Thompson construction tests: acceptance oracle on small languages."""

import pytest

from repro.regex.nfa import MAX_COUNTED_EXPANSION, build_nfa, expand_repeat
from repro.regex import ast
from repro.regex.parser import parse


def accepts(pattern: str, text: str) -> bool:
    return build_nfa(parse(pattern)).accepts(text)


class TestBasicAcceptance:
    def test_literal(self):
        assert accepts("abc", "abc")
        assert not accepts("abc", "abx")
        assert not accepts("abc", "ab")
        assert not accepts("abc", "abcd")

    def test_empty_pattern(self):
        assert accepts("", "")
        assert not accepts("", "a")

    def test_dot(self):
        assert accepts("a.c", "abc")
        assert accepts("a.c", "a.c")
        assert not accepts("a.c", "ac")

    def test_alternation(self):
        assert accepts("a|b", "a")
        assert accepts("a|b", "b")
        assert not accepts("a|b", "c")
        assert not accepts("a|b", "ab")

    def test_star(self):
        assert accepts("a*", "")
        assert accepts("a*", "aaaa")
        assert not accepts("a*", "ab")

    def test_plus(self):
        assert not accepts("a+", "")
        assert accepts("a+", "a")
        assert accepts("a+", "aaa")

    def test_opt(self):
        assert accepts("a?", "")
        assert accepts("a?", "a")
        assert not accepts("a?", "aa")

    def test_char_class(self):
        assert accepts("[abc]", "b")
        assert not accepts("[abc]", "d")

    def test_negated_class(self):
        assert accepts("[^abc]", "d")
        assert not accepts("[^abc]", "a")

    def test_nested(self):
        pattern = "(a|b)*c(d|e)+"
        assert accepts(pattern, "ababcdede")
        assert accepts(pattern, "cd")
        assert not accepts(pattern, "c")
        assert not accepts(pattern, "abab")


class TestCountedRepetition:
    def test_exact(self):
        assert accepts("a{3}", "aaa")
        assert not accepts("a{3}", "aa")
        assert not accepts("a{3}", "aaaa")

    def test_range(self):
        for n in range(6):
            expected = 2 <= n <= 4
            assert accepts("a{2,4}", "a" * n) is expected

    def test_open(self):
        for n in range(6):
            assert accepts("a{2,}", "a" * n) is (n >= 2)

    def test_zero_lower(self):
        assert accepts("a{0,2}", "")
        assert accepts("a{0,2}", "aa")
        assert not accepts("a{0,2}", "aaa")

    def test_group_repetition(self):
        assert accepts("(ab){2}", "abab")
        assert not accepts("(ab){2}", "ab")

    def test_expansion_limit(self):
        with pytest.raises(ValueError):
            expand_repeat(
                ast.Repeat(ast.Char.literal("a"), 0, MAX_COUNTED_EXPANSION + 1)
            )

    def test_expand_repeat_language(self):
        node = ast.Repeat(ast.Char.literal("a"), 1, 3)
        expanded = expand_repeat(node)
        nfa = build_nfa(expanded)
        assert not nfa.accepts("")
        assert nfa.accepts("a")
        assert nfa.accepts("aaa")
        assert not nfa.accepts("aaaa")


class TestStructure:
    def test_single_start_accept(self):
        nfa = build_nfa(parse("(a|b)*c"))
        assert 0 <= nfa.start < nfa.state_count
        assert 0 <= nfa.accept < nfa.state_count

    def test_classes_deduplicated(self):
        nfa = build_nfa(parse("aaa"))
        assert len(nfa.classes()) == 1

    def test_epsilon_closure_reflexive(self):
        nfa = build_nfa(parse("ab"))
        closure = nfa.epsilon_closure({nfa.start})
        assert nfa.start in closure

    def test_step_dead_on_foreign(self):
        nfa = build_nfa(parse("a"))
        current = nfa.epsilon_closure({nfa.start})
        assert nfa.step(current, "b") == frozenset()
