"""TraceStore: bounded ring eviction, slow-trace retention, and
thread-safety under concurrent writers."""

import threading

import pytest

from repro.obs.clock import ManualClock, use_clock
from repro.obs.ids import new_trace_id
from repro.obs.store import (
    PHASE_SPANS,
    TraceRecord,
    TraceStore,
    phase_seconds,
)
from repro.obs.trace import Trace


def record(duration, endpoint="/search", trace=None, trace_id=None):
    return TraceRecord(
        trace_id=trace_id if trace_id is not None else new_trace_id(),
        endpoint=endpoint,
        pattern="abc",
        status=200,
        duration_seconds=duration,
        ts_monotonic=0.0,
        trace=trace,
    )


class TestValidation:
    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)
        with pytest.raises(ValueError):
            TraceStore(slow_capacity=0)
        with pytest.raises(ValueError):
            TraceStore(sample_rate=1.5)
        with pytest.raises(ValueError):
            TraceStore(slow_threshold_seconds=0.0)


class TestSamplingPolicy:
    def test_rate_one_keeps_everything(self):
        store = TraceStore(sample_rate=1.0, slow_threshold_seconds=10.0)
        for _ in range(10):
            assert store.offer(record(0.01)) == "probability"
        assert len(store.recent()) == 10

    def test_rate_zero_keeps_only_slow(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_seconds=0.5)
        assert store.offer(record(0.01)) is None
        assert store.offer(record(0.9)) == "slow"
        assert store.recent() == []
        assert len(store.slowest()) == 1

    def test_both_reasons_combine(self):
        store = TraceStore(sample_rate=1.0, slow_threshold_seconds=0.5)
        kept = store.offer(record(0.9))
        assert kept == "probability+slow"

    def test_sampled_reason_written_back(self):
        store = TraceStore(sample_rate=1.0, slow_threshold_seconds=10.0)
        rec = record(0.01)
        store.offer(rec)
        assert rec.sampled_reason == "probability"

    def test_decision_is_deterministic_in_the_id(self):
        tid = new_trace_id()
        first = TraceStore(sample_rate=0.37).offer(
            record(0.01, trace_id=tid)
        )
        second = TraceStore(sample_rate=0.37).offer(
            record(0.01, trace_id=tid)
        )
        assert first == second


class TestRingEviction:
    def test_ring_is_bounded_and_newest_first(self):
        store = TraceStore(
            capacity=4, sample_rate=1.0, slow_threshold_seconds=10.0
        )
        records = [record(0.001 * i) for i in range(10)]
        for rec in records:
            store.offer(rec)
        recent = store.recent()
        assert len(recent) == 4
        assert [r.trace_id for r in recent] == [
            r.trace_id for r in reversed(records[-4:])
        ]
        assert store.stats()["evicted"] == 6

    def test_recent_n_slices(self):
        store = TraceStore(
            capacity=8, sample_rate=1.0, slow_threshold_seconds=10.0
        )
        for i in range(8):
            store.offer(record(0.001 * i))
        assert len(store.recent(3)) == 3


class TestSlowRetention:
    def test_top_n_by_duration_survives_ring_churn(self):
        store = TraceStore(
            capacity=2,
            slow_capacity=3,
            sample_rate=0.0,
            slow_threshold_seconds=0.1,
        )
        durations = [0.2, 0.9, 0.15, 0.5, 0.3, 0.7]
        for duration in durations:
            store.offer(record(duration))
        slowest = [r.duration_seconds for r in store.slowest()]
        assert slowest == [0.9, 0.7, 0.5]  # top-3, slowest first

    def test_fast_requests_never_enter_slow_set(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_seconds=0.5)
        store.offer(record(0.49))
        assert store.slowest() == []

    def test_threshold_is_inclusive(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_seconds=0.5)
        assert store.offer(record(0.5)) == "slow"


class TestLookup:
    def test_get_finds_in_ring_and_slow_set(self):
        store = TraceStore(
            capacity=4, sample_rate=1.0, slow_threshold_seconds=0.5
        )
        fast, slow = record(0.01), record(0.9)
        store.offer(fast)
        store.offer(slow)
        assert store.get(fast.trace_id) is fast
        assert store.get(slow.trace_id) is slow
        assert store.get("f" * 32) is None

    def test_slow_record_survives_ring_eviction(self):
        store = TraceStore(
            capacity=2, sample_rate=1.0, slow_threshold_seconds=0.5
        )
        slow = record(0.9)
        store.offer(slow)
        for _ in range(5):
            store.offer(record(0.01))
        assert store.get(slow.trace_id) is slow


class TestConcurrency:
    def test_concurrent_writers_keep_bounds_and_counters(self):
        store = TraceStore(
            capacity=16,
            slow_capacity=8,
            sample_rate=1.0,
            slow_threshold_seconds=0.5,
        )
        n_threads, per_thread = 8, 200

        def hammer(ordinal):
            for i in range(per_thread):
                duration = 0.9 if (i % 10) == 0 else 0.01
                store.offer(record(duration))

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = store.stats()
        total = n_threads * per_thread
        assert stats["offered"] == total
        assert stats["ring_size"] == 16
        assert stats["slow_size"] == 8
        assert stats["kept_sampled"] == total
        assert stats["kept_slow"] == n_threads * (per_thread // 10)
        # every retained slow trace really is slow
        assert all(
            r.duration_seconds >= 0.5 for r in store.slowest()
        )

    def test_concurrent_readers_do_not_crash_writers(self):
        store = TraceStore(
            capacity=8, sample_rate=1.0, slow_threshold_seconds=0.5
        )
        stop = threading.Event()
        failures = []

        def reader():
            try:
                while not stop.is_set():
                    store.recent(4)
                    store.slowest(4)
                    len(store)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for i in range(2000):
                store.offer(record(0.9 if i % 7 == 0 else 0.01))
        finally:
            stop.set()
            thread.join()
        assert not failures


class TestPhaseSeconds:
    def test_flattens_the_span_taxonomy(self):
        clock = ManualClock()
        with use_clock(clock):
            trace = Trace()
            with trace.span("/search"):
                with trace.span("plan"):
                    clock.advance(0.010)
                with trace.span("postings"):
                    clock.advance(0.020)
                with trace.span("verify"):
                    clock.advance(0.030)
        phases = phase_seconds(trace)
        assert phases["plan"] == pytest.approx(0.010)
        assert phases["postings"] == pytest.approx(0.020)
        assert phases["verify"] == pytest.approx(0.030)
        assert "matcher" not in phases  # absent phases omitted
        assert set(phases) <= set(PHASE_SPANS)

    def test_none_trace_yields_empty(self):
        assert phase_seconds(None) == {}


class TestRecordExport:
    def test_as_dict_with_and_without_spans(self):
        trace = Trace()
        with trace.span("/search"):
            pass
        rec = record(0.9, trace=trace, trace_id=trace.trace_id)
        full = rec.as_dict()
        assert full["trace"]["trace_id"] == rec.trace_id
        lean = rec.as_dict(spans=False)
        assert "trace" not in lean

    def test_render_mentions_identity_and_reason(self):
        store = TraceStore(sample_rate=1.0, slow_threshold_seconds=10.0)
        rec = record(0.01)
        store.offer(rec)
        text = rec.render()
        assert rec.trace_id in text
        assert "probability" in text
