"""Unit tests for the pluggable postings kernels.

Covers backend resolution (explicit name > index preference >
FREE_KERNEL env > python default), the aliasing regression both
backends must honour (fresh-list results), int64-overflow fallback to
the python kernel, the decoded-block LRU, cursor intersection against
real blocked lists, and the kernel-backend observability surfaces
(QueryMetrics field + bounded registry counter).
"""

import pytest

from repro.corpus.store import InMemoryCorpus
from repro.engine.free import FreeEngine
from repro.index import kernels as kernels_mod
from repro.index.builder import build_multigram_index
from repro.index.kernels import (
    KERNEL_ENV_VAR,
    PYTHON_KERNEL,
    KernelError,
    PostingsKernel,
    PythonKernel,
    numpy_available,
    resolve_kernel,
)
from repro.index.postings import (
    BlockCursor,
    BlockedPostingsList,
    ListCursor,
    encode_gaps,
)
from repro.index.serialize import load_index, save_index
from repro.obs.registry import MetricsRegistry

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


def make_numpy_kernel(**kwargs):
    from repro.index.kernels import NumpyKernel

    return NumpyKernel(**kwargs)


class TestResolveKernel:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel() is PYTHON_KERNEL

    def test_explicit_python_returns_shared_instance(self):
        assert resolve_kernel("python") is PYTHON_KERNEL

    def test_instance_passes_through(self):
        kernel = PythonKernel()
        assert resolve_kernel(kernel) is kernel

    def test_unknown_name_raises(self):
        with pytest.raises(KernelError):
            resolve_kernel("fortran")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert resolve_kernel() is PYTHON_KERNEL
        # An explicit name always beats the environment.
        monkeypatch.setenv(KERNEL_ENV_VAR, "fortran")
        assert resolve_kernel("python") is PYTHON_KERNEL
        with pytest.raises(KernelError):
            resolve_kernel()

    def test_auto_without_numpy_is_python(self, monkeypatch):
        monkeypatch.setattr(
            kernels_mod, "numpy_available", lambda: False
        )
        assert resolve_kernel("auto") is PYTHON_KERNEL

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(
            kernels_mod, "numpy_available", lambda: False
        )
        with pytest.raises(KernelError):
            resolve_kernel("numpy")

    @needs_numpy
    def test_auto_with_numpy_is_numpy(self):
        assert resolve_kernel("auto").name == "numpy"

    @needs_numpy
    def test_env_numpy(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert resolve_kernel().name == "numpy"

    @needs_numpy
    def test_numpy_instances_are_private(self):
        # Unlike python (stateless, shared), every resolution returns
        # a fresh numpy kernel: the decoded-block cache is per-engine.
        a = resolve_kernel("numpy")
        b = resolve_kernel("numpy")
        assert a is not b
        assert a.decoded_cache is not b.decoded_cache


@pytest.fixture(
    params=["python", "numpy"] if numpy_available() else ["python"]
)
def kernel(request):
    if request.param == "python":
        return PYTHON_KERNEL
    return make_numpy_kernel()


class TestSetOperations:
    def test_intersect_sorted(self, kernel):
        assert kernel.intersect_sorted([1, 3, 5, 9], [3, 4, 9]) == [3, 9]
        assert kernel.intersect_sorted([], [1, 2]) == []
        assert kernel.intersect_sorted([1, 2], []) == []

    def test_intersect_many(self, kernel):
        lists = [[1, 2, 3, 8], [2, 3, 8, 9], [0, 3, 8]]
        assert kernel.intersect_many(lists) == [3, 8]
        assert kernel.intersect_many([]) == []
        assert kernel.intersect_many([[1, 2], [3]]) == []

    def test_intersect_many_single_list_is_a_fresh_copy(self, kernel):
        # The aliasing regression: the 1-list fast path must hand back
        # a list the caller owns, exactly like union_many.
        only = [1, 2, 3]
        result = kernel.intersect_many([only])
        assert result == only
        assert result is not only

    def test_union_many(self, kernel):
        lists = [[1, 5], [2, 5, 7], [0]]
        assert kernel.union_many(lists) == [0, 1, 2, 5, 7]
        assert kernel.union_many(lists, limit=3) == [0, 1, 2]
        assert kernel.union_many(lists, limit=0) == []
        assert kernel.union_many([[], []]) == []

    def test_union_many_single_list_is_a_fresh_copy(self, kernel):
        only = [4, 5, 6]
        result = kernel.union_many([only])
        assert result == only
        assert result is not only

    def test_difference_sorted(self, kernel):
        assert kernel.difference_sorted([1, 2, 3], [2]) == [1, 3]
        assert kernel.difference_sorted([], [2]) == []
        source = [1, 2]
        result = kernel.difference_sorted(source, [])
        assert result == source
        assert result is not source

    def test_huge_ids_fall_back_identically(self, kernel):
        # 2**64 overflows int64: the numpy kernel must silently demote
        # to the python reference, not raise or truncate.
        a = [1, 2**63 - 1, 2**64, 2**64 + 10]
        b = [2, 2**63 - 1, 2**64 + 10]
        assert kernel.intersect_sorted(a, b) == [2**63 - 1, 2**64 + 10]
        assert kernel.intersect_many([a, b]) == [2**63 - 1, 2**64 + 10]
        assert kernel.union_many([a, b]) == sorted(set(a) | set(b))
        assert kernel.difference_sorted(a, b) == [1, 2**64]

    def test_intersect_cursors_on_blocked_lists(self, kernel):
        left = BlockedPostingsList.from_ids(range(0, 600, 2),
                                            block_size=16)
        right = BlockedPostingsList.from_ids(range(0, 600, 3),
                                             block_size=16)
        expected = [i for i in range(0, 600) if i % 6 == 0]
        result = kernel.intersect_cursors(
            [BlockCursor(left, None), BlockCursor(right, None)]
        )
        assert result == expected

    def test_intersect_cursors_limit_prefix(self, kernel):
        left = BlockedPostingsList.from_ids(range(0, 600, 2),
                                            block_size=16)
        right = ListCursor(list(range(0, 600, 3)))
        full = kernel.intersect_cursors([BlockCursor(left, None), right])
        for limit in (0, 1, 5, len(full), len(full) + 3):
            result = kernel.intersect_cursors(
                [BlockCursor(left, None),
                 ListCursor(list(range(0, 600, 3)))],
                limit=limit,
            )
            assert result == full[:limit]

    def test_intersect_cursors_mixed_and_flat(self, kernel):
        ids = list(range(0, 100, 5))
        flat = BlockedPostingsList.from_flat(encode_gaps(ids), len(ids))
        other = ListCursor(list(range(0, 100, 4)))
        result = kernel.intersect_cursors(
            [BlockCursor(flat, None), other]
        )
        assert result == [i for i in range(0, 100) if i % 20 == 0]


@needs_numpy
class TestNumpyKernel:
    def test_clone_is_independent(self):
        kernel = make_numpy_kernel(cache_blocks=7)
        clone = kernel.clone()
        assert clone is not kernel
        assert clone.decoded_cache is not kernel.decoded_cache
        assert clone.decoded_cache.capacity == 7

    def test_decoded_block_cache_hits_on_repeat(self):
        kernel = make_numpy_kernel()
        left = BlockedPostingsList.from_ids(range(0, 400, 2),
                                            block_size=16)
        right = BlockedPostingsList.from_ids(range(0, 400, 3),
                                             block_size=16)

        def run():
            return kernel.intersect_cursors(
                [BlockCursor(left, None), BlockCursor(right, None)]
            )

        first = run()
        hits_before = kernel.decoded_cache.hits
        assert run() == first
        assert kernel.decoded_cache.hits > hits_before

    def test_overflowing_block_demotes_to_python(self):
        # A list whose tail block holds ids beyond int64 must still
        # intersect exactly; the overflow sentinel is remembered.
        huge = BlockedPostingsList.from_ids(
            [1, 5, 9, 2**64, 2**64 + 4], block_size=2
        )
        other = ListCursor([5, 2**64 + 4])
        kernel = make_numpy_kernel()
        for _ in range(2):
            result = kernel.intersect_cursors(
                [BlockCursor(huge, None), other]
            )
            assert result == [5, 2**64 + 4]
            other = ListCursor([5, 2**64 + 4])

    def test_partially_advanced_cursor_falls_back(self):
        # Semantics of advanced cursors belong to the python kernel;
        # the numpy path must delegate, not rewind.
        plist = BlockedPostingsList.from_ids(range(0, 200, 2),
                                             block_size=16)
        advanced = BlockCursor(plist, None)
        advanced.next_geq(100)
        result = make_numpy_kernel().intersect_cursors(
            [advanced, ListCursor(list(range(0, 200, 3)))]
        )
        reference = BlockCursor(plist, None)
        reference.next_geq(100)
        assert result == PYTHON_KERNEL.intersect_cursors(
            [reference, ListCursor(list(range(0, 200, 3)))]
        )

    def test_truncated_varint_raises_like_python(self):
        bad = BlockedPostingsList.from_flat(b"\x80", 1)
        kernel = make_numpy_kernel()
        with pytest.raises(ValueError, match="truncated varint"):
            kernel.intersect_cursors(
                [BlockCursor(bad, None), ListCursor([0, 1])]
            )

    def test_vectorized_decode_matches_scalar(self):
        from repro.index.postings import decode_gaps

        ids = [0, 1, 127, 128, 300, 2**20, 2**35, 2**55 + 11]
        data = encode_gaps(ids)
        kernel = make_numpy_kernel()
        decoded = kernel._decode_gaps_array(data, -1)
        assert decoded is not None
        assert decoded.tolist() == decode_gaps(data) == ids


def _advanced_copy(plist, floor):
    cursor = BlockCursor(plist, None)
    cursor.next_geq(floor)
    return cursor


class TestKernelObservability:
    @pytest.fixture()
    def corpus(self):
        texts = [f"motorola mpc{i} chip" for i in range(30)]
        return InMemoryCorpus.from_texts(texts)

    def _engine(self, corpus, kernel_name, registry=None):
        index = build_multigram_index(
            corpus, threshold=0.4, max_gram_len=4
        )
        return FreeEngine(corpus, index, registry=registry,
                          kernel=kernel_name)

    def test_metrics_record_backend(self, corpus):
        engine = self._engine(corpus, "python")
        report = engine.search("mpc[0-9]+")
        assert report.metrics.kernel_backend == "python"
        assert report.metrics.as_dict()["kernel_backend"] == "python"
        assert "kernel: python" in report.metrics.pretty()

    @needs_numpy
    def test_metrics_record_numpy_backend(self, corpus):
        engine = self._engine(corpus, "numpy")
        report = engine.search("mpc[0-9]+")
        assert report.metrics.kernel_backend == "numpy"

    def test_registry_counter_is_bounded(self, corpus):
        registry = MetricsRegistry()
        engine = self._engine(corpus, "python", registry=registry)
        engine.search("mpc[0-9]+")
        engine.search("motorola")
        family = registry.snapshot()["free_kernel_backend"]
        assert family["samples"] == {"backend=python": 2.0}

    def test_index_backend_preference_adopted(self, corpus, tmp_path):
        index = build_multigram_index(
            corpus, threshold=0.4, max_gram_len=4
        )
        path = str(tmp_path / "pref.idx")
        save_index(index, path, version=2)
        loaded = load_index(path, kernel="python")
        assert loaded.kernel_backend == "python"
        engine = FreeEngine(corpus, loaded)
        assert engine.kernel is PYTHON_KERNEL
        # An explicit engine argument beats the index preference.
        override = PythonKernel()
        assert FreeEngine(corpus, loaded, kernel=override).kernel \
            is override

    def test_engine_kernel_is_postings_kernel(self, corpus):
        for name in (None, "python"):
            engine = self._engine(corpus, name)
            assert isinstance(engine.kernel, PostingsKernel)
