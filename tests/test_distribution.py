"""Alternation-distribution extension tests (the deferred optimization).

Distribution rewrites ``(a|b)c`` into ``ac|bc`` before gram extraction,
so literal runs extend across branch boundaries — strictly stronger
filters, same language, bounded blowup.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse
from repro.regex.rewrite import (
    ReqAnd,
    ReqGram,
    ReqOr,
    distribute_alternations,
    requirement_tree,
    to_or_star,
)


class TestDistribution:
    def test_simple_left(self):
        req = requirement_tree(parse("(a|b)c"), distribute=True)
        assert req == ReqOr((ReqGram("ac"), ReqGram("bc")))

    def test_simple_right(self):
        req = requirement_tree(parse("x(y|z)"), distribute=True)
        assert req == ReqOr((ReqGram("xy"), ReqGram("xz")))

    def test_paper_example_gets_longer_grams(self):
        req = requirement_tree(
            parse("(Bill|William)Clinton"), distribute=True
        )
        assert req == ReqOr((
            ReqGram("BillClinton"), ReqGram("WilliamClinton"),
        ))

    def test_star_blocks_distribution(self):
        # (a|b)*c: the starred group stays atomic (ANY)
        req = requirement_tree(parse("(a|b)*c"), distribute=True)
        assert req == ReqGram("c")

    def test_nested_product(self):
        req = requirement_tree(parse("(a|b)(c|d)"), distribute=True)
        assert req == ReqOr((
            ReqGram("ac"), ReqGram("ad"), ReqGram("bc"), ReqGram("bd"),
        ))

    def test_budget_limits_expansion(self):
        # 4 x 4 x 4 = 64 disjuncts > 16: falls back to undistributed
        pattern = "(a|b|c|d)(e|f|g|h)(i|j|k|l)"
        with_dist = requirement_tree(parse(pattern), distribute=True)
        without = requirement_tree(parse(pattern), distribute=False)
        assert with_dist == without

    def test_quote_example(self):
        """The mp3-style optional quote merges into the gram."""
        req = requirement_tree(parse('("|\')?x'), distribute=True)
        assert req == ReqOr((
            ReqGram('"x'), ReqGram("'x"), ReqGram("x"),
        ))

    @settings(max_examples=120, deadline=None)
    @given(
        node=st.recursive(
            st.sampled_from("abc").map(ast.Char.literal),
            lambda inner: st.one_of(
                st.tuples(inner, inner).map(lambda t: ast.concat(*t)),
                st.tuples(inner, inner).map(lambda t: ast.alt(*t)),
                inner.map(ast.Star),
                inner.map(ast.Opt),
            ),
            max_leaves=7,
        ),
        text=st.text(alphabet="abc", max_size=10),
    )
    def test_language_preserved(self, node, text):
        normal = to_or_star(node)
        distributed = distribute_alternations(normal)
        assert build_nfa(normal).accepts(text) == \
            build_nfa(distributed).accepts(text)


class TestDistributionInEngine:
    def test_distributed_plan_is_sound_and_tighter(self):
        from repro import (
            FreeEngine,
            InMemoryCorpus,
            build_multigram_index,
        )

        # 'ac' appears in 1 doc; 'a' and 'c' separately in many, so the
        # undistributed plan AND(OR(a,b), c) is much weaker than
        # OR(ac, bc).
        texts = (
            ["ac here"] + [f"a {i}" for i in range(6)]
            + [f"c {i}" for i in range(6)]
            + [f"a c {i}" for i in range(6)]
        )
        corpus = InMemoryCorpus.from_texts(texts)
        index = build_multigram_index(corpus, threshold=0.4, max_gram_len=4)
        plain = FreeEngine(corpus, index, distribute=False)
        dist = FreeEngine(corpus, index, distribute=True)
        pattern = "(a|b)c"
        r_plain = plain.search(pattern)
        r_dist = dist.search(pattern)
        assert [(m.doc_id, m.span) for m in r_plain.matches] == \
            [(m.doc_id, m.span) for m in r_dist.matches]
        assert r_dist.n_candidates <= r_plain.n_candidates

    @settings(max_examples=50, deadline=None)
    @given(
        texts=st.lists(
            st.text(alphabet="ab<", min_size=0, max_size=15),
            min_size=1, max_size=6,
        ),
        pattern=st.sampled_from(
            ["(a|b)<", "a(b|<)a", "(aa|bb)(a|<)", "a?b<"]
        ),
    )
    def test_distribution_soundness_property(self, texts, pattern):
        from repro import (
            FreeEngine,
            InMemoryCorpus,
            ScanEngine,
            build_multigram_index,
        )

        corpus = InMemoryCorpus.from_texts(texts)
        index = build_multigram_index(corpus, threshold=0.5, max_gram_len=3)
        dist = FreeEngine(corpus, index, distribute=True)
        scan = ScanEngine(corpus)
        assert (
            dist.search(pattern, collect_matches=False).n_matches
            == scan.search(pattern, collect_matches=False).n_matches
        )
