"""Parser tests: grammar coverage, escapes, classes, errors, round-trip."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regex import ast
from repro.regex.charclass import ALPHA, DIGIT, DOT, SPACE, WORD, CharClass
from repro.regex.parser import parse


class TestAtoms:
    def test_single_literal(self):
        node = parse("a")
        assert isinstance(node, ast.Char)
        assert node.cls == CharClass.singleton("a")

    def test_literal_string(self):
        node = parse("abc")
        assert isinstance(node, ast.Concat)
        assert len(node.parts) == 3

    def test_dot(self):
        assert parse(".").cls == DOT

    def test_empty_pattern_matches_empty(self):
        assert isinstance(parse(""), ast.Empty)

    def test_group(self):
        assert parse("(a)") == parse("a")

    def test_nested_groups(self):
        assert parse("((a))") == parse("a")


class TestEscapes:
    @pytest.mark.parametrize(
        "pattern,cls",
        [(r"\a", ALPHA), (r"\d", DIGIT), (r"\s", SPACE), (r"\w", WORD)],
    )
    def test_shorthand(self, pattern, cls):
        assert parse(pattern).cls == cls

    @pytest.mark.parametrize("meta", list(".*+?|()[]{}\\"))
    def test_escaped_metachar(self, meta):
        node = parse("\\" + meta)
        assert node.cls == CharClass.singleton(meta)

    def test_control_escapes(self):
        assert parse(r"\t").cls.only_char == "\t"
        assert parse(r"\n").cls.only_char == "\n"
        assert parse(r"\r").cls.only_char == "\r"

    def test_unknown_escape_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse(r"\q")

    def test_trailing_backslash_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("ab\\")


class TestQuantifiers:
    def test_star(self):
        node = parse("a*")
        assert isinstance(node, ast.Star)

    def test_plus(self):
        assert isinstance(parse("a+"), ast.Plus)

    def test_opt(self):
        assert isinstance(parse("a?"), ast.Opt)

    def test_counted_exact(self):
        node = parse("a{3}")
        assert isinstance(node, ast.Repeat)
        assert (node.lo, node.hi) == (3, 3)

    def test_counted_open(self):
        node = parse("a{2,}")
        assert (node.lo, node.hi) == (2, None)

    def test_counted_range(self):
        node = parse("a{0,200}")
        assert (node.lo, node.hi) == (0, 200)

    def test_quantifier_binds_to_atom(self):
        node = parse("ab*")
        assert isinstance(node, ast.Concat)
        assert isinstance(node.parts[1], ast.Star)

    def test_quantifier_on_group(self):
        node = parse("(ab)*")
        assert isinstance(node, ast.Star)
        assert isinstance(node.child, ast.Concat)

    def test_stacked_quantifiers(self):
        node = parse("a*?")  # (a*)? in this dialect, not lazy matching
        assert isinstance(node, ast.Opt)
        assert isinstance(node.child, ast.Star)

    def test_dangling_quantifier_rejected(self):
        for bad in ("*a", "+a", "?a", "{2}a", "|*"):
            with pytest.raises(RegexSyntaxError):
                parse(bad)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{3,2}")

    def test_malformed_bounds_rejected(self):
        for bad in ("a{", "a{}", "a{x}", "a{1,2"):
            with pytest.raises(RegexSyntaxError):
                parse(bad)


class TestAlternation:
    def test_two_options(self):
        node = parse("a|b")
        assert isinstance(node, ast.Alt)
        assert len(node.options) == 2

    def test_flattened(self):
        node = parse("a|b|c")
        assert len(node.options) == 3

    def test_precedence_concat_over_alt(self):
        node = parse("ab|cd")
        assert isinstance(node, ast.Alt)
        assert all(isinstance(o, ast.Concat) for o in node.options)

    def test_empty_branch_allowed(self):
        node = parse("a|")
        assert isinstance(node, ast.Alt)
        assert isinstance(node.options[1], ast.Empty)

    def test_group_changes_precedence(self):
        grouped = parse("a(b|c)d")
        flat = parse("ab|cd")
        assert grouped != flat


class TestCharClasses:
    def test_simple_class(self):
        node = parse("[abc]")
        assert set(node.cls.chars) == {"a", "b", "c"}

    def test_range(self):
        node = parse("[a-e]")
        assert set(node.cls.chars) == set("abcde")

    def test_multiple_ranges(self):
        node = parse("[a-c0-2]")
        assert set(node.cls.chars) == set("abc012")

    def test_negated(self):
        node = parse("[^a]")
        assert "a" not in node.cls
        assert "b" in node.cls

    def test_negated_range(self):
        node = parse("[^a-z]")
        assert "m" not in node.cls
        assert "M" in node.cls

    def test_shorthand_inside_class(self):
        node = parse(r"[\d-]")
        assert "5" in node.cls and "-" in node.cls

    def test_literal_dash_positions(self):
        # leading or trailing '-' is a literal
        assert "-" in parse("[-a]").cls
        assert "-" in parse("[a-]").cls

    def test_bracket_literal_first(self):
        # ']' right after '[' is a literal in this dialect via escape
        node = parse(r"[\]]")
        assert "]" in node.cls

    def test_caret_not_first_is_literal(self):
        node = parse("[a^]")
        assert "^" in node.cls and "a" in node.cls

    def test_unterminated_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")

    def test_empty_class_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[]")

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[z-a]")

    def test_metachars_literal_inside_class(self):
        node = parse("[.*+?]")
        assert set(node.cls.chars) == {".", "*", "+", "?"}


class TestErrors:
    @pytest.mark.parametrize("bad", ["(", ")", "(a", "a)", "(a|b", "a|b)"])
    def test_unbalanced_parens(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("ab[")
        assert excinfo.value.position >= 2
        assert excinfo.value.pattern == "ab["


class TestRoundTrip:
    """to_pattern() output must re-parse to an equal AST."""

    @pytest.mark.parametrize(
        "pattern",
        [
            "a",
            "abc",
            "a|b",
            "a*b+c?",
            "(ab|cd)*e",
            "[a-z]+@[a-z]+",
            r"\d\d\d-\d\d\d\d",
            "a{2,5}",
            "a{3,}",
            "a{4}",
            r"<a href=(\"|')?.*\.mp3(\"|')?>",
            "(Bill|William).*Clinton",
            r"motorola.*(xpc|mpc)[0-9]+[0-9a-z]*",
            "<[^>]*<",
            r"<script>.*</script>",
        ],
    )
    def test_round_trip(self, pattern):
        node = parse(pattern)
        assert parse(node.to_pattern()) == node


class TestBenchmarkQueriesParse:
    """Every Figure 8 benchmark query must parse."""

    def test_all_benchmark_queries(self):
        from repro.bench.queries import BENCHMARK_QUERIES

        for name, pattern in BENCHMARK_QUERIES.items():
            node = parse(pattern)
            assert node is not None, name
