"""Property-based tests: the from-scratch engine against two oracles.

Oracle 1: the stdlib ``re`` module, via the AST translation (containment
must agree exactly — containment is insensitive to the leftmost-greedy
vs leftmost-longest difference).

Oracle 2: direct NFA simulation for whole-string acceptance (parser ->
NFA -> eager DFA -> lazy DFA must all define the same language).
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.dfa import LazyDFA, build_dfa
from repro.regex.matcher import Matcher, to_stdlib_pattern
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse

ALPHABET = "abc"


def asts(max_leaves: int = 8):
    """Strategy producing small ASTs over a 3-letter alphabet."""
    chars = st.sampled_from(ALPHABET).map(ast.Char.literal)
    classes = st.sets(
        st.sampled_from(ALPHABET), min_size=1, max_size=3
    ).map(lambda s: ast.Char(CharClass(s)))
    leaves = st.one_of(chars, classes, st.just(ast.Empty()))
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: ast.concat(*t)),
            st.tuples(inner, inner).map(lambda t: ast.alt(*t)),
            inner.map(ast.Star),
            inner.map(ast.Plus),
            inner.map(ast.Opt),
            st.tuples(
                inner,
                st.integers(0, 2),
                st.integers(0, 3),
            ).map(lambda t: ast.Repeat(t[0], t[1], max(t[1], t[2]))),
        ),
        max_leaves=max_leaves,
    )


texts = st.text(alphabet=ALPHABET, max_size=14)


@settings(max_examples=150, deadline=None)
@given(node=asts(), text=texts)
def test_containment_matches_stdlib(node, text):
    ours = Matcher(node, backend="dfa")
    oracle = re.compile(to_stdlib_pattern(node))
    assert ours.contains(text) == (oracle.search(text) is not None)


@settings(max_examples=150, deadline=None)
@given(node=asts(), text=texts)
def test_fullmatch_matches_stdlib(node, text):
    ours = Matcher(node, backend="dfa")
    oracle = re.compile(to_stdlib_pattern(node))
    assert ours.fullmatch(text) == (oracle.fullmatch(text) is not None)


@settings(max_examples=100, deadline=None)
@given(node=asts(max_leaves=6), text=texts)
def test_nfa_dfa_lazy_agree(node, text):
    nfa = build_nfa(node)
    eager = build_dfa(nfa)
    lazy = LazyDFA(nfa)
    expected = nfa.accepts(text)
    assert eager.accepts(text) == expected
    assert lazy.accepts(text) == expected


@settings(max_examples=100, deadline=None)
@given(node=asts(), text=texts)
def test_match_count_parity_with_re_backend_existence(node, text):
    """Span *existence* per position agrees between backends.

    Exact spans may differ (POSIX longest vs Python greedy), but if one
    backend finds any match the other must too.
    """
    dfa = Matcher(node, backend="dfa")
    re_ = Matcher(node, backend="re")
    assert (dfa.search(text) is None) == (re_.search(text) is None)


@settings(max_examples=100, deadline=None)
@given(node=asts(), text=texts)
def test_spans_are_real_matches(node, text):
    """Every reported span, when sliced, must fullmatch the pattern."""
    matcher = Matcher(node, backend="dfa")
    nfa = build_nfa(node)
    for start, end in matcher.finditer(text):
        assert 0 <= start <= end <= len(text)
        assert nfa.accepts(text[start:end])


@settings(max_examples=100, deadline=None)
@given(node=asts(), text=texts)
def test_spans_non_overlapping_and_ordered(node, text):
    spans = list(Matcher(node, backend="dfa").finditer(text))
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= max(e1, s1 + 1)


@settings(max_examples=100, deadline=None)
@given(node=asts(), text=texts)
def test_round_trip_parse(node, text):
    """to_pattern() must reparse to the same language (checked on text)."""
    reparsed = parse(node.to_pattern())
    assert build_nfa(node).accepts(text) == build_nfa(reparsed).accepts(text)


@settings(max_examples=60, deadline=None)
@given(
    pattern_text=st.text(
        alphabet="abc()|*+?[].\\{}0-9", min_size=0, max_size=12
    ),
)
def test_parser_never_crashes_unexpectedly(pattern_text):
    """Arbitrary input either parses or raises RegexSyntaxError."""
    from repro.errors import RegexSyntaxError

    try:
        node = parse(pattern_text)
    except RegexSyntaxError:
        return
    except ValueError as exc:
        # counted repetitions beyond the expansion cap surface as
        # ValueError at NFA build time, not parse time
        pytest.skip(f"expansion limit: {exc}")
    # If it parsed, it must also compile.
    Matcher(node).contains("abcabc")
