"""Tests for OR/STAR normal form, requirement trees, anchors, reversal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex import ast
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse
from repro.regex.rewrite import (
    ReqAnd,
    ReqAny,
    ReqGram,
    ReqOr,
    anchor_clauses,
    anchor_literals,
    iter_grams,
    requirement_tree,
    reverse_ast,
    simplify,
    to_or_star,
)


class TestToOrStar:
    def test_plus_becomes_concat_star(self):
        node = to_or_star(parse("a+"))
        assert isinstance(node, ast.Concat)
        assert isinstance(node.parts[1], ast.Star)

    def test_opt_becomes_alt_with_empty(self):
        node = to_or_star(parse("a?"))
        assert isinstance(node, ast.Alt)
        assert any(isinstance(o, ast.Empty) for o in node.options)

    def test_repeat_expanded(self):
        node = to_or_star(parse("a{2,3}"))
        for sub in ast.walk(node):
            assert not isinstance(sub, (ast.Plus, ast.Opt, ast.Repeat))

    def test_language_preserved(self):
        for pattern, text, expected in [
            ("a+b?", "aab", True),
            ("a+b?", "b", False),
            ("a{1,2}c", "aac", True),
            ("a{1,2}c", "aaac", False),
            ("(ab)+", "abab", True),
        ]:
            rewritten = to_or_star(parse(pattern))
            assert build_nfa(rewritten).accepts(text) is expected

    def test_only_or_star_connectives_remain(self):
        node = to_or_star(parse("(a+|b?c{1,2})*d+"))
        for sub in ast.walk(node):
            assert isinstance(
                sub, (ast.Char, ast.Concat, ast.Alt, ast.Star, ast.Empty)
            )


class TestRequirementTree:
    def test_paper_running_example(self):
        """Example 4.1: (Bill|William).*Clinton."""
        req = requirement_tree(parse("(Bill|William).*Clinton"))
        assert req == ReqAnd((
            ReqOr((ReqGram("Bill"), ReqGram("William"))),
            ReqGram("Clinton"),
        ))

    def test_literal_run_merging(self):
        req = requirement_tree(parse("abc"))
        assert req == ReqGram("abc")

    def test_star_becomes_any(self):
        assert isinstance(requirement_tree(parse("a*")), ReqAny)

    def test_plus_keeps_gram(self):
        # a+ == aa*: the gram 'a' must occur at least once.
        assert requirement_tree(parse("abc+")) == ReqGram("abc")

    def test_plus_breaks_literal_run(self):
        # ab+c requires "ab" and "c" (b+ rewrites to bb*).
        req = requirement_tree(parse("ab+c"))
        assert req == ReqAnd((ReqGram("ab"), ReqGram("c")))

    def test_opt_becomes_any(self):
        # a? may be absent: no requirement.
        assert isinstance(requirement_tree(parse("a?")), ReqAny)

    def test_opt_inside_concat(self):
        req = requirement_tree(parse("xa?y"))
        assert req == ReqAnd((ReqGram("x"), ReqGram("y")))

    def test_small_class_expands_to_or(self):
        req = requirement_tree(parse("[ab]"))
        assert req == ReqOr((ReqGram("a"), ReqGram("b")))

    def test_large_class_is_any(self):
        assert isinstance(requirement_tree(parse(".")), ReqAny)
        assert isinstance(requirement_tree(parse("[^a]")), ReqAny)

    def test_min_gram_len_filters(self):
        req = requirement_tree(parse("ab.*c"), min_gram_len=2)
        assert req == ReqGram("ab")  # 'c' too short -> ANY -> dropped

    def test_alternation_with_empty_branch_is_any(self):
        # (abc|) can match the empty string: no gram required.
        assert isinstance(requirement_tree(parse("abc|")), ReqAny)

    def test_counted_lower_bound_zero_is_any(self):
        assert isinstance(requirement_tree(parse("a{0,3}")), ReqAny)

    def test_counted_lower_bound_positive_requires(self):
        req = requirement_tree(parse("a{2,3}"))
        assert ReqGram("aa") == req

    def test_iter_grams(self):
        req = requirement_tree(parse("(foo|bar).*baz"))
        assert sorted(iter_grams(req)) == ["bar", "baz", "foo"]

    def test_phone_query_has_only_short_grams(self):
        req = requirement_tree(
            parse(r"(\(\d\d\d\) |\d\d\d-)\d\d\d-\d\d\d\d"),
            min_gram_len=2,
        )
        # with 2+ gram length required, the digit classes yield nothing
        assert isinstance(req, ReqAny)


class TestSimplify:
    def test_and_true_elimination(self):
        req = simplify(ReqAnd((ReqGram("x"), ReqAny())))
        assert req == ReqGram("x")

    def test_or_true_elimination(self):
        req = simplify(ReqOr((ReqGram("x"), ReqAny())))
        assert isinstance(req, ReqAny)

    def test_nested_flattening(self):
        req = simplify(
            ReqAnd((ReqAnd((ReqGram("a"), ReqGram("b"))), ReqGram("c")))
        )
        assert req == ReqAnd((ReqGram("a"), ReqGram("b"), ReqGram("c")))

    def test_dedup(self):
        req = simplify(ReqAnd((ReqGram("a"), ReqGram("a"))))
        assert req == ReqGram("a")

    def test_empty_and_is_any(self):
        assert isinstance(simplify(ReqAnd(())), ReqAny)

    def test_table2_matrix(self):
        """Table 2, all four cells for AND and OR."""
        g = ReqGram("g")
        h = ReqGram("h")
        # AND: (reg, reg) -> intact; (reg, NULL) -> left; etc.
        assert simplify(ReqAnd((g, h))) == ReqAnd((g, h))
        assert simplify(ReqAnd((g, ReqAny()))) == g
        assert simplify(ReqAnd((ReqAny(), h))) == h
        assert isinstance(simplify(ReqAnd((ReqAny(), ReqAny()))), ReqAny)
        # OR: any NULL -> NULL.
        assert simplify(ReqOr((g, h))) == ReqOr((g, h))
        assert isinstance(simplify(ReqOr((g, ReqAny()))), ReqAny)
        assert isinstance(simplify(ReqOr((ReqAny(), h))), ReqAny)
        assert isinstance(simplify(ReqOr((ReqAny(), ReqAny()))), ReqAny)


class TestAnchors:
    def test_single_gram(self):
        req = requirement_tree(parse("needle"))
        assert anchor_literals(req) == frozenset({"needle"})

    def test_and_picks_one_side(self):
        req = requirement_tree(parse("(Bill|William).*Clinton"))
        assert anchor_literals(req) == frozenset({"Clinton"})

    def test_or_unions(self):
        req = requirement_tree(parse("foo|bar"))
        assert anchor_literals(req) == frozenset({"foo", "bar"})

    def test_any_has_no_anchor(self):
        assert anchor_literals(requirement_tree(parse(".*"))) is None

    def test_or_with_any_branch_has_no_anchor(self):
        req = requirement_tree(parse("foo|.*"), min_gram_len=1)
        assert anchor_literals(req) is None

    def test_anchor_soundness_on_examples(self):
        """No text lacking every anchor may contain a match."""
        from repro.regex.matcher import Matcher

        for pattern in [
            "(Bill|William).*Clinton",
            "abc|def",
            "x+y",
            "[ab]cd",
        ]:
            matcher = Matcher(pattern, anchoring=False)
            anchors = Matcher(pattern).anchors
            if anchors is None:
                continue
            text = "zzzz qqqq wwww"
            if not any(a in text for a in anchors):
                assert not matcher.contains(text)


class TestAnchorClauses:
    def test_and_gives_multiple_clauses(self):
        req = requirement_tree(parse("(Bill|William).*Clinton"))
        clauses = anchor_clauses(req)
        assert frozenset({"Clinton"}) in clauses
        assert frozenset({"Bill", "William"}) in clauses

    def test_mp3_style_conjunction(self):
        """The case the single-anchor chooser got wrong: both the
        universal tag gram AND the rare extension gram are clauses."""
        req = requirement_tree(parse(r"<a href=.*\.mp3"))
        clauses = anchor_clauses(req)
        assert frozenset({"<a href="}) in clauses
        assert frozenset({".mp3"}) in clauses

    def test_any_gives_no_clauses(self):
        assert anchor_clauses(requirement_tree(parse(".*"))) == ()

    def test_or_with_unconstrained_branch(self):
        req = requirement_tree(parse("abc|.*"))
        assert anchor_clauses(req) == ()

    def test_or_cross_union(self):
        # (ab.*cd)|ef: clauses ({ab,ef}, {cd,ef})
        req = requirement_tree(parse("(ab.*cd)|ef"))
        clauses = set(anchor_clauses(req))
        assert clauses == {
            frozenset({"ab", "ef"}), frozenset({"cd", "ef"}),
        }

    def test_blowup_falls_back_to_single_clause(self):
        # 3 branches x 3 clauses each > MAX_ANCHOR_CLAUSES
        pattern = "(a.*b.*c.*d.*e)|(f.*g.*h.*i.*j)|(k.*l.*m.*n.*o)"
        req = requirement_tree(parse(pattern))
        clauses = anchor_clauses(req)
        assert len(clauses) == 1

    def test_clauses_sound_on_matcher(self):
        """prefilter_rejects must never reject a matching text."""
        from repro.regex.matcher import Matcher

        patterns = [
            r"<a href=.*\.mp3",
            "(Bill|William).*Clinton",
            "(ab.*cd)|ef",
            "x+y?z",
        ]
        texts = [
            "<a href=x.mp3", "pre William xx Clinton post", "zzefzz",
            "xyz", "xz", "plain text",
        ]
        for pattern in patterns:
            anchored = Matcher(pattern)
            bare = Matcher(pattern, anchoring=False)
            for text in texts:
                if bare.contains(text):
                    assert not anchored.prefilter_rejects(text), (
                        pattern, text,
                    )
                assert anchored.contains(text) == bare.contains(text)

    def test_mp3_prefilter_rejects_linkful_page(self):
        from repro.regex.matcher import Matcher

        matcher = Matcher(r"<a href=.*\.mp3")
        page = '<a href="a.html"> <a href="b.html"> no audio here'
        assert matcher.prefilter_rejects(page)


class TestReverse:
    def test_literal_reverse(self):
        rev = reverse_ast(parse("abc"))
        assert build_nfa(rev).accepts("cba")
        assert not build_nfa(rev).accepts("abc")

    def test_reverse_language(self):
        cases = [
            ("abc", "abc"[::-1]),
            ("a(bc|de)f", "adef"[::-1]),
            ("ab*c", "abbbc"[::-1]),
            ("a{2,3}b", "aab"[::-1]),
        ]
        for pattern, reversed_text in cases:
            rev = reverse_ast(parse(pattern))
            assert build_nfa(rev).accepts(reversed_text), pattern

    def test_double_reverse_identity_language(self):
        pattern = "a(b|cd)+e?"
        node = parse(pattern)
        double = reverse_ast(reverse_ast(node))
        for text in ["abe", "acde", "abcdbe", "ab", ""]:
            assert build_nfa(node).accepts(text) == \
                build_nfa(double).accepts(text)


@settings(max_examples=100, deadline=None)
@given(text=st.text(alphabet="ab<>/.x", max_size=16))
def test_requirement_tree_soundness_property(text):
    """If the regex matches a substring of text, the requirement tree
    must evaluate true under 'gram in text'."""
    from repro.regex.matcher import Matcher

    patterns = ["a+b", "(ax|bx).*<", "ab{1,2}x", "<[^>]*>", "a.b|x"]
    for pattern in patterns:
        matcher = Matcher(pattern, anchoring=False)
        if not matcher.contains(text):
            continue
        req = requirement_tree(parse(pattern))
        assert _eval(req, text), (pattern, text)


def _eval(req, text):
    if isinstance(req, ReqAny):
        return True
    if isinstance(req, ReqGram):
        return req.gram in text
    if isinstance(req, ReqAnd):
        return all(_eval(c, text) for c in req.children)
    if isinstance(req, ReqOr):
        return any(_eval(c, text) for c in req.children)
    raise TypeError(req)
