"""Synthetic web tests: determinism and controlled feature frequencies."""

import pytest

from repro.corpus.synthesis import (
    DEFAULT_FEATURES,
    CorpusConfig,
    SyntheticWeb,
    ZipfSampler,
    build_corpus,
    make_vocabulary,
)
import random


class TestVocabulary:
    def test_size_and_uniqueness(self):
        words = make_vocabulary(500, random.Random(1))
        assert len(words) == len(set(words)) == 500

    def test_word_shape(self):
        words = make_vocabulary(100, random.Random(2))
        assert all(2 <= len(w) <= 18 for w in words)
        assert all(w.isalpha() and w.islower() for w in words)

    def test_zipf_skew(self):
        words = make_vocabulary(100, random.Random(3))
        sampler = ZipfSampler(words, exponent=1.1)
        rng = random.Random(4)
        sample = sampler.sample(rng, 20_000)
        counts = {}
        for w in sample:
            counts[w] = counts.get(w, 0) + 1
        # rank-1 word must be much more common than rank-50
        assert counts.get(words[0], 0) > 5 * counts.get(words[49], 1)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = build_corpus(n_pages=20, seed=11)
        b = build_corpus(n_pages=20, seed=11)
        assert [u.text for u in a] == [u.text for u in b]

    def test_different_seed_differs(self):
        a = build_corpus(n_pages=5, seed=1)
        b = build_corpus(n_pages=5, seed=2)
        assert [u.text for u in a] != [u.text for u in b]

    def test_page_independent_of_order(self):
        web = SyntheticWeb(CorpusConfig(n_pages=50, seed=9))
        direct = web.page(33).text
        web2 = SyntheticWeb(CorpusConfig(n_pages=50, seed=9))
        for i in range(33):
            web2.page(i)
        assert web2.page(33).text == direct


class TestStructure:
    def test_html_skeleton(self):
        corpus = build_corpus(n_pages=10, seed=5)
        for unit in corpus:
            assert unit.text.startswith("<html>")
            assert unit.text.endswith("</body></html>")
            assert "<title>" in unit.text

    def test_urls_assigned(self):
        corpus = build_corpus(n_pages=5, seed=5)
        assert all(u.url.startswith("http://") for u in corpus)

    def test_alphabet_clean(self):
        """Pages must use only the engine alphabet."""
        from repro.regex.charclass import ALPHABET

        corpus = build_corpus(n_pages=20, seed=6)
        for unit in corpus:
            assert set(unit.text) <= ALPHABET

    def test_hyperlinks_nearly_universal(self):
        """sel(<a href=) ~ 1, the Example 2.1 premise."""
        corpus = build_corpus(n_pages=100, seed=7)
        with_link = sum('<a href="' in u.text for u in corpus)
        assert with_link / len(corpus) > 0.9


class TestFeaturePlanting:
    def test_feature_frequency_tracks_probability(self):
        probs = {"mp3": 0.3, "powerpc": 0.0}
        corpus = build_corpus(n_pages=400, seed=8, feature_probs=probs)
        mp3_pages = sum(".mp3" in u.text for u in corpus)
        powerpc_pages = sum("motorola" in u.text for u in corpus)
        assert 0.2 <= mp3_pages / 400 <= 0.4
        assert powerpc_pages == 0

    def test_all_features_have_defaults(self):
        config = CorpusConfig()
        for name in DEFAULT_FEATURES:
            assert 0.0 <= config.probability(name) <= 1.0

    def test_unknown_feature_probability_zero(self):
        assert CorpusConfig().probability("nonexistent") == 0.0

    def test_override(self):
        config = CorpusConfig(feature_probs={"mp3": 0.77})
        assert config.probability("mp3") == 0.77

    @pytest.mark.parametrize(
        "feature,needle",
        [
            ("mp3", ".mp3"),
            ("ebay", "ebay"),
            ("zip", "our office:"),
            ("phone", "call"),
            ("clinton", "william"),
            ("powerpc", "motorola"),
            ("script", "<script>"),
            ("sigmod", "sigmod"),
            ("stanford", "stanford.edu"),
            ("edison", "Edison"),
        ],
    )
    def test_feature_renderers_produce_needles(self, feature, needle):
        corpus = build_corpus(
            n_pages=150, seed=10, feature_probs={feature: 1.0}
        )
        hits = sum(needle in u.text for u in corpus)
        # the needle must appear in (nearly) all pages when p = 1
        assert hits >= len(corpus) * 0.95

    def test_benchmark_queries_find_planted_features(self):
        """Each planted feature must be matched by its Figure 8 query."""
        from repro.bench.queries import BENCHMARK_QUERIES
        from repro.regex.matcher import Matcher

        feature_of_query = {
            "mp3": "mp3",
            "ebay": "ebay",
            "zip": "zip",
            "clinton": "clinton",
            "powerpc": "powerpc",
            "script": "script",
            "phone": "phone",
            "sigmod": "sigmod",
            "stanford": "stanford",
        }
        for query, feature in feature_of_query.items():
            corpus = build_corpus(
                n_pages=40, seed=12, feature_probs={feature: 1.0}
            )
            matcher = Matcher(BENCHMARK_QUERIES[query], backend="re")
            hits = sum(matcher.contains(u.text) for u in corpus)
            assert hits >= len(corpus) * 0.9, query

    def test_with_pages_helper(self):
        config = CorpusConfig(n_pages=10).with_pages(25)
        assert config.n_pages == 25
