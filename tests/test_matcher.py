"""Matcher tests: containment, span semantics, backends, anchoring."""

import pytest

from repro.regex.matcher import Matcher, to_stdlib_pattern
from repro.regex.parser import parse


class TestContains:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("abc", "xxabcxx", True),
            ("abc", "ababab", False),
            ("a+b", "caaab", True),
            ("a|b", "ccc", False),
            ("[0-9]+", "px44q", True),
            ("colou?r", "my color", True),
            ("colou?r", "my colour", True),
            ("c.t", "a cat sat", True),
            ("^", None, None),  # placeholder replaced below
        ][:-1],
    )
    def test_basic(self, pattern, text, expected):
        assert Matcher(pattern).contains(text) is expected

    def test_empty_pattern_contains_everything(self):
        assert Matcher("").contains("")
        assert Matcher("").contains("abc")

    def test_contains_at_boundaries(self):
        m = Matcher("ab")
        assert m.contains("abxx")
        assert m.contains("xxab")

    def test_multiline_text(self):
        m = Matcher("foo.bar")
        assert m.contains("xx foo\nbar yy")  # our dot spans newline


class TestSpans:
    def test_single_match(self):
        assert list(Matcher("bc").finditer("abcd")) == [(1, 3)]

    def test_multiple_matches_non_overlapping(self):
        assert list(Matcher("aa").finditer("aaaa")) == [(0, 2), (2, 4)]

    def test_leftmost_longest(self):
        # POSIX: prefer the longest match at the leftmost start.
        spans = list(Matcher("a|ab").finditer("ab"))
        assert spans == [(0, 2)]

    def test_leftmost_longest_with_star(self):
        text = "<script>a</script> mid <script>b</script>"
        spans = list(Matcher("<script>.*</script>").finditer(text))
        # greedy .* spans to the LAST </script> (POSIX longest)
        assert spans == [(0, len(text))]

    def test_plus_greedy(self):
        assert list(Matcher("a+").finditer("aaa b aa")) == [(0, 3), (6, 8)]

    def test_findall_strings(self):
        assert Matcher("a.c").findall("aXc abc") == ["aXc", "abc"]

    def test_count(self):
        assert Matcher("[0-9]+").count("1 22 333") == 3

    def test_search_first(self):
        assert Matcher("b+").search("abbbc") == (1, 4)
        assert Matcher("z").search("abc") is None

    def test_search_with_start(self):
        assert Matcher("a").search("aba", 1) == (2, 3)

    def test_empty_match_advances(self):
        spans = list(Matcher("a*").finditer("ba"))
        assert (0, 0) in spans and (1, 2) in spans

    def test_fullmatch(self):
        m = Matcher("ab+")
        assert m.fullmatch("abbb")
        assert not m.fullmatch("abbbc")
        assert not m.fullmatch("xabb")


class TestAnchoring:
    def test_anchor_extracted(self):
        m = Matcher("(Bill|William).*Clinton")
        assert m.anchors == frozenset({"Clinton"})

    def test_anchor_none_for_class_queries(self):
        m = Matcher(r"\d\d\d")
        # digits expand to an OR of 1-grams; a valid (weak) anchor set
        assert m.anchors is None or all(len(a) == 1 for a in m.anchors)

    def test_anchor_disabled(self):
        m = Matcher("abc", anchoring=False)
        assert m.anchors is None
        assert m.contains("xxabc")

    def test_anchored_and_unanchored_agree(self):
        texts = ["has Clinton here", "nothing", "Bill only", "BillClinton"]
        with_anchor = Matcher("(Bill|William).*Clinton")
        without = Matcher("(Bill|William).*Clinton", anchoring=False)
        for text in texts:
            assert with_anchor.contains(text) == without.contains(text)


class TestReBackend:
    PATTERNS = [
        "abc",
        "a+b*c?",
        "(ab|cd)+",
        "[a-f]{2,3}",
        r"\d\d-\d\d",
        "x(y|)z",
        "<[^>]*>",
    ]
    TEXTS = ["", "abc", "aabbcc", "xz xyz", "12-34", "<tag> body", "cdcdab"]

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_contains_parity(self, pattern):
        dfa = Matcher(pattern, backend="dfa")
        re_ = Matcher(pattern, backend="re")
        for text in self.TEXTS:
            assert dfa.contains(text) == re_.contains(text), (pattern, text)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            Matcher("a", backend="pcre")

    def test_stdlib_translation_language(self):
        import re

        pattern = r"(\a|\d)+\.edu"
        compiled = re.compile(to_stdlib_pattern(parse(pattern)))
        assert compiled.fullmatch("cs42.edu")
        assert not compiled.fullmatch("cs .edu")


class TestLazyPatterns:
    """Patterns routed to the lazy DFA must still match correctly."""

    def test_sigmod_like(self):
        m = Matcher(r'<a href=("|\')?[^>]*\.pdf("|\')?>.{0,200}sigmod')
        text = '<a href="x.pdf">' + "w" * 100 + "sigmod"
        assert m.contains(text)
        far = '<a href="x.pdf">' + "w" * 300 + "sigmod"
        assert not m.contains(far)

    def test_bounded_gap_span(self):
        m = Matcher("a.{0,60}b")
        text = "a" + "x" * 50 + "b"
        assert list(m.finditer(text)) == [(0, len(text))]


class TestBenchmarkQueriesMatch:
    """Hand-built positive/negative texts for each Figure 8 query."""

    CASES = {
        "mp3": (
            '<a href="http://x.com/song.mp3">song</a>',
            '<a href="http://x.com/song.mp4">song</a>',
        ),
        "ebay": (
            "go to ebay for the big auction now",
            "go to ebay for the big sale now",
        ),
        "zip": (
            "office: sanjose, ca 95120",
            "office: sanjose ca 9512",
        ),
        "html": ("<b <i>", "<b></b><i></i>"),
        "clinton": (
            "william jefferson clinton",
            "william clinton",
        ),
        "powerpc": (
            "motorola ships mpc7400x today",
            "motorola ships pentium3 today",
        ),
        "script": (
            "<script>var x=1;</script>",
            "<script no close",
        ),
        "phone": ("call (408) 555-0199", "call 40855 50199"),
        "sigmod": (
            '<a href="p.pdf">p</a> in sigmod',
            '<a href="p.doc">p</a> in sigmod',
        ),
        "stanford": (
            "mail me at jo-e.smith@cs.stanford.edu ok",
            "mail me at jo-e.smith@cs.mit.edu ok",
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_positive_negative(self, name):
        from repro.bench.queries import BENCHMARK_QUERIES

        matcher = Matcher(BENCHMARK_QUERIES[name])
        positive, negative = self.CASES[name]
        assert matcher.contains(positive), name
        assert not matcher.contains(negative), name
