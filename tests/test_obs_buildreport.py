"""BuildReport tests: builder profiling, persistence, rendering."""

import json

import pytest

from repro.corpus.document import DataUnit
from repro.corpus.store import InMemoryCorpus
from repro.index.builder import MultigramIndexBuilder
from repro.obs.buildreport import (
    BUILD_REPORT_SUFFIX,
    SCHEMA,
    BuildReport,
    default_report_path,
)


def _corpus(n=20):
    return InMemoryCorpus([
        DataUnit(i, ("web page " * (i % 3 + 1)) + f"tail{i}")
        for i in range(n)
    ])


def _built_report(presuf=False):
    builder = MultigramIndexBuilder(
        threshold=0.25, max_gram_len=6, presuf=presuf
    )
    index = builder.build(_corpus())
    return index, index.stats.build_report


class TestBuilderProfiling:
    def test_report_attached_to_stats(self):
        index, report = _built_report()
        assert report is not None
        assert report.kind == "multigram"
        assert report.n_docs == 20
        assert report.threshold == pytest.approx(0.25)

    def test_totals_match_index_stats(self):
        index, report = _built_report()
        assert report.n_keys == index.stats.n_keys
        assert report.n_postings == index.stats.n_postings
        assert report.postings_bytes == index.stats.postings_bytes
        assert report.total_seconds == pytest.approx(
            index.stats.construction_seconds
        )

    def test_level_arithmetic(self):
        _index, report = _built_report()
        assert report.levels, "miner must record at least one level"
        for lp in report.levels:
            assert lp.candidates == lp.useful + lp.pruned
            assert lp.hash_classified <= lp.useful

    def test_one_pass_per_corpus_scan(self):
        index, report = _built_report()
        # The postings pass is not a mining pass.
        assert len(report.passes) == index.stats.corpus_scans - 1

    def test_phases_cover_the_pipeline(self):
        _index, report = _built_report(presuf=True)
        names = [phase.name for phase in report.phases]
        assert names == ["mining", "presuf", "postings"]
        presuf = report.find_phase("presuf")
        assert presuf.detail["keys_after"] <= presuf.detail["keys_before"]
        assert report.find_phase("nope") is None

    def test_phase_recorded_even_on_error(self):
        report = BuildReport()
        with pytest.raises(RuntimeError):
            with report.phase("mining"):
                raise RuntimeError("boom")
        assert [phase.name for phase in report.phases] == ["mining"]


class TestPersistence:
    def test_round_trip_dict(self):
        _index, report = _built_report()
        payload = report.as_dict()
        assert payload["schema"] == SCHEMA
        clone = BuildReport.from_dict(payload)
        assert clone.as_dict() == payload

    def test_save_load(self, tmp_path):
        _index, report = _built_report()
        path = str(tmp_path / "idx.img") + BUILD_REPORT_SUFFIX
        report.save(path)
        loaded = BuildReport.load(path)
        assert loaded.n_keys == report.n_keys
        assert len(loaded.levels) == len(report.levels)
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == SCHEMA

    def test_default_report_path(self):
        assert default_report_path("a/b.idx") == (
            "a/b.idx" + BUILD_REPORT_SUFFIX
        )


class TestRendering:
    def test_render_mentions_every_level_and_phase(self):
        _index, report = _built_report(presuf=True)
        text = report.render()
        assert "build profile (presuf)" in text
        for lp in report.levels:
            assert f"\n  {lp.level:5d} |" in text
        assert "phase mining" in text
        assert "phase presuf" in text
        assert "phase postings" in text
        assert "totals:" in text
