"""Web graph and crawler substrate tests."""

import pytest

from repro.corpus.crawler import Crawler, PageServer, crawl_synthetic_web
from repro.corpus.synthesis import CorpusConfig, SyntheticWeb
from repro.corpus.webgraph import WebGraph


class TestWebGraph:
    def test_size(self):
        graph = WebGraph(50, seed=1)
        assert len(graph) == 50

    def test_deterministic(self):
        a = WebGraph(40, seed=2)
        b = WebGraph(40, seed=2)
        assert all(
            a.out_links(i) == b.out_links(i) for i in range(40)
        )

    def test_links_point_to_valid_nodes(self):
        graph = WebGraph(30, seed=3)
        for i in range(30):
            for dst in graph.out_links(i):
                assert 0 <= dst < 30

    def test_no_self_links(self):
        graph = WebGraph(30, seed=4)
        for i in range(30):
            assert i not in graph.out_links(i)

    def test_heavy_tail(self):
        """Preferential attachment: max in-degree far above median."""
        graph = WebGraph(400, seed=5)
        hist = graph.in_degree_histogram()
        degrees = sorted(
            d for d, count in hist.items() for _ in range(count)
        )
        median = degrees[len(degrees) // 2]
        assert degrees[-1] > 5 * max(median, 1)

    def test_single_node(self):
        graph = WebGraph(1, seed=6)
        assert graph.out_links(0) == ()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WebGraph(0)


class TestPageServer:
    def _server(self, n=20):
        web = SyntheticWeb(CorpusConfig(n_pages=n, seed=7))
        return PageServer(web, WebGraph(n, seed=7))

    def test_fetch_known_url(self):
        server = self._server()
        url = server.url_of(0)
        html, links = server.fetch(url)
        assert "<html>" in html
        assert all(link.startswith("http://") for link in links)

    def test_fetch_unknown_url(self):
        assert self._server().fetch("http://nowhere/") is None

    def test_fetch_count(self):
        server = self._server()
        server.fetch(server.url_of(0))
        server.fetch(server.url_of(1))
        assert server.fetch_count == 2

    def test_web_must_cover_graph(self):
        web = SyntheticWeb(CorpusConfig(n_pages=5, seed=1))
        with pytest.raises(ValueError):
            PageServer(web, WebGraph(10, seed=1))


class TestCrawler:
    def test_crawl_reaches_whole_graph(self):
        server = self._server(30)
        corpus = Crawler(server).crawl([server.url_of(0)])
        assert len(corpus) == 30

    def test_budget_respected(self):
        server = self._server(30)
        corpus = Crawler(server, max_pages=7).crawl([server.url_of(0)])
        assert len(corpus) == 7

    def test_dense_ids_in_crawl_order(self):
        server = self._server(15)
        corpus = Crawler(server).crawl([server.url_of(0)])
        assert [u.doc_id for u in corpus] == list(range(len(corpus)))

    def test_no_duplicate_urls(self):
        server = self._server(25)
        corpus = Crawler(server).crawl([server.url_of(0)])
        urls = [u.url for u in corpus]
        assert len(urls) == len(set(urls))

    def test_dead_seed_skipped(self):
        server = self._server(10)
        corpus = Crawler(server).crawl(
            ["http://dead/", server.url_of(0)]
        )
        assert len(corpus) == 10

    def test_end_to_end_helper(self):
        corpus = crawl_synthetic_web(25, seed=9)
        assert len(corpus) == 25
        assert corpus.total_chars > 0

    def test_crawled_corpus_indexes(self):
        """Figure 1 end to end: crawl -> index -> query."""
        from repro import FreeEngine, build_multigram_index

        corpus = crawl_synthetic_web(40, seed=10)
        index = build_multigram_index(corpus, threshold=0.2, max_gram_len=6)
        engine = FreeEngine(corpus, index)
        report = engine.search("<title>")
        assert report.n_candidates <= len(corpus)

    def _server(self, n):
        web = SyntheticWeb(CorpusConfig(n_pages=n, seed=8))
        return PageServer(web, WebGraph(n, seed=8))
