"""Parallel builder tests: exact identity with the sequential miner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import InMemoryCorpus, build_corpus, build_multigram_index
from repro.errors import IndexBuildError
from repro.index.parallel import (
    ParallelMultigramBuilder,
    build_multigram_index_parallel,
)


def assert_same_index(a, b):
    assert set(a.keys()) == set(b.keys())
    for key in a.keys():
        assert a.lookup(key).ids() == b.lookup(key).ids(), key
    assert a.stats.n_postings == b.stats.n_postings


class TestIdentity:
    def test_inline_workers_identity(self):
        corpus = build_corpus(n_pages=40, seed=51)
        sequential = build_multigram_index(
            corpus, threshold=0.2, max_gram_len=6
        )
        parallel = ParallelMultigramBuilder(
            threshold=0.2, max_gram_len=6, workers=1
        ).build(corpus)
        assert_same_index(sequential, parallel)

    def test_forked_workers_identity(self):
        corpus = build_corpus(n_pages=40, seed=52)
        sequential = build_multigram_index(
            corpus, threshold=0.2, max_gram_len=6
        )
        parallel = build_multigram_index_parallel(
            corpus, workers=2, threshold=0.2, max_gram_len=6
        )
        assert_same_index(sequential, parallel)

    def test_presuf_identity(self):
        corpus = build_corpus(n_pages=30, seed=53)
        sequential = build_multigram_index(
            corpus, threshold=0.2, max_gram_len=5, presuf=True
        )
        parallel = build_multigram_index_parallel(
            corpus, workers=2, threshold=0.2, max_gram_len=5, presuf=True
        )
        assert_same_index(sequential, parallel)

    @settings(max_examples=25, deadline=None)
    @given(
        texts=st.lists(
            st.text(alphabet="abcd", min_size=1, max_size=20),
            min_size=1, max_size=9,
        ),
        chunk_docs=st.sampled_from([1, 2, 4]),
    )
    def test_property_identity_any_chunking(self, texts, chunk_docs):
        corpus = InMemoryCorpus.from_texts(texts)
        sequential = build_multigram_index(
            corpus, threshold=0.4, max_gram_len=4
        )
        parallel = ParallelMultigramBuilder(
            threshold=0.4, max_gram_len=4, workers=1,
            chunk_docs=chunk_docs,
        ).build(corpus)
        assert_same_index(sequential, parallel)


class TestMechanics:
    def test_chunking_covers_corpus(self):
        corpus = build_corpus(n_pages=10, seed=54)
        builder = ParallelMultigramBuilder(workers=1, chunk_docs=3)
        chunks = builder._chunks(corpus)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        flat = [u.doc_id for chunk in chunks for u in chunk]
        assert flat == list(range(10))

    def test_empty_corpus(self):
        index = ParallelMultigramBuilder(workers=1).build(
            InMemoryCorpus([])
        )
        assert len(index) == 0

    def test_bad_workers(self):
        with pytest.raises(IndexBuildError):
            ParallelMultigramBuilder(workers=0)

    def test_param_validation_delegated(self):
        with pytest.raises(IndexBuildError):
            ParallelMultigramBuilder(threshold=2.0)

    def test_stats_recorded(self):
        corpus = build_corpus(n_pages=15, seed=55)
        index = ParallelMultigramBuilder(
            workers=1, threshold=0.3, max_gram_len=5
        ).build(corpus)
        assert index.stats.corpus_scans >= 2
        assert index.stats.construction_seconds > 0
        assert index.stats.n_keys == len(index)

    def test_engine_runs_on_parallel_index(self):
        from repro import FreeEngine, ScanEngine

        corpus = build_corpus(n_pages=30, seed=56)
        index = build_multigram_index_parallel(
            corpus, workers=2, threshold=0.2, max_gram_len=6
        )
        free = FreeEngine(corpus, index)
        scan = ScanEngine(corpus)
        for pattern in ("<title>", "the"):
            assert (
                free.search(pattern, collect_matches=False).n_matches
                == scan.search(pattern, collect_matches=False).n_matches
            )
