"""Benchmark harness tests on a miniature workload."""

import pytest

from repro.bench.queries import BENCHMARK_QUERIES, NULL_PLAN_QUERIES
from repro.bench.report import format_bar_chart, format_table
from repro.bench.runner import (
    BENCH_INGEST_SCHEMA,
    BENCH_POSTINGS_SCHEMA,
    run_cover_policy_ablation,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_ingest,
    run_postings,
    run_table3,
    run_threshold_ablation,
    write_bench_ingest,
    write_bench_postings,
)
from repro.bench.workloads import Workload, default_workload


@pytest.fixture(scope="module")
def mini_workload():
    # Small but feature-bearing: boost rare features via seed choice is
    # unreliable, so use enough pages for every query to be exercised.
    return default_workload(
        n_pages=120, seed=77, complete_ks=(2, 3, 4, 5)
    )


class TestWorkload:
    def test_cached(self):
        a = default_workload(n_pages=60, seed=5, complete_ks=(2, 3))
        b = default_workload(n_pages=60, seed=5, complete_ks=(2, 3))
        assert a is b

    def test_engines_fresh_disks(self, mini_workload):
        e1 = mini_workload.engines()
        e2 = mini_workload.engines()
        assert e1["scan"].disk is not e2["scan"].disk
        assert set(e1) == {"scan", "multigram", "complete", "presuf"}


class TestRunners:
    def test_table3_rows(self, mini_workload):
        rows = run_table3(mini_workload)
        assert [r["index"] for r in rows] == [
            "complete", "multigram", "suffix"
        ]
        for row in rows:
            assert row["gram_keys"] > 0
            assert row["postings"] > 0

    def test_fig9_rows_complete(self, mini_workload):
        rows = run_fig9(mini_workload)
        assert {r["query"] for r in rows} == set(BENCHMARK_QUERIES)
        for row in rows:
            assert row["scan_candidates"] == len(mini_workload.corpus)
            assert row["multigram_io"] > 0

    def test_fig9_engines_agree(self, mini_workload):
        # run_fig9 raises AssertionError internally on any mismatch
        run_fig9(mini_workload)

    def test_fig10_sorted_by_result_size(self, mini_workload):
        rows = run_fig10(mini_workload)
        sizes = [r["result_size"] for r in rows]
        assert sizes == sorted(sizes)

    def test_fig11_rows(self, mini_workload):
        rows = run_fig11(mini_workload, k=5)
        for row in rows:
            assert row["multigram_units_read"] >= 0

    def test_fig12_rows(self, mini_workload):
        rows = run_fig12(mini_workload)
        for row in rows:
            assert row["suffix_degradation"] > 0

    def test_threshold_ablation(self, mini_workload):
        rows = run_threshold_ablation(
            mini_workload.corpus, thresholds=(0.1, 0.3),
            max_gram_len=6,
        )
        assert len(rows) == 2
        # larger c -> shorter frontier -> fewer (not more) keys
        assert rows[0]["gram_keys"] >= rows[1]["gram_keys"]
        assert all(r["gram_keys"] > 0 for r in rows)

    def test_cover_policy_ablation(self, mini_workload):
        rows = run_cover_policy_ablation(mini_workload)
        assert {r["policy"] for r in rows} == {"all", "best", "cheapest2"}

    def test_run_postings_record(self, mini_workload, tmp_path):
        path = str(tmp_path / "BENCH_free_postings.json")
        record = write_bench_postings(
            path, mini_workload, repeats=1, load_rounds=2
        )
        assert record["schema"] == BENCH_POSTINGS_SCHEMA
        cold = record["cold_start"]
        assert cold["v1_load_seconds"] > 0
        assert cold["v2_load_seconds"] > 0
        # The mmap load parses nothing; the eager v1 load decodes every
        # posting.  The CI gate asserts >= 2x on this same field.
        assert cold["load_speedup"] > 1.0
        decoded = record["decoded_per_query"]
        assert decoded["v1_bytes_mean"] > 0
        assert decoded["v2_bytes_mean"] <= decoded["v1_bytes_mean"]
        assert record["workload"]["kernel"] == "python"
        micro = record["kernel_microbench_us"]
        assert set(micro) == {"python", "numpy", "intersect_speedup"}
        cases = {
            "union_1", "union_2", "union_8",
            "intersect_1", "intersect_2", "intersect_8",
        }
        assert set(micro["python"]) == cases
        assert all(value > 0 for value in micro["python"].values())
        # The numpy leg mirrors the python one when numpy is present
        # and records its absence (None) otherwise.
        from repro.index.kernels import numpy_available

        if numpy_available():
            assert set(micro["numpy"]) == cases
            assert all(value > 0 for value in micro["numpy"].values())
            assert micro["intersect_speedup"] > 0
        else:
            assert micro["numpy"] is None
            assert micro["intersect_speedup"] is None
        import json

        assert json.load(open(path))["schema"] == BENCH_POSTINGS_SCHEMA

    def test_run_postings_rejects_bad_args(self, mini_workload):
        with pytest.raises(ValueError):
            run_postings(mini_workload, repeats=0)

    def test_run_ingest_record(self, mini_workload, tmp_path):
        path = str(tmp_path / "BENCH_free_ingest.json")
        record = write_bench_ingest(
            path, mini_workload, readers=2, memtable_docs=16,
            fanout=2, delete_every=5,
        )
        assert record["schema"] == BENCH_INGEST_SCHEMA
        assert record["ok"] is True
        assert record["verified_identical"] is True
        assert record["writer_errors"] == []
        ingest = record["ingest"]
        assert ingest["docs_added"] == len(mini_workload.corpus)
        assert ingest["docs_deleted"] > 0
        assert ingest["docs_per_second"] > 0
        assert ingest["seals"] > 0
        assert ingest["compactions"] > 0
        assert ingest["final_segments"] == 1  # ends fully compacted
        assert ingest["final_tombstones"] == 0
        assert ingest["image_bytes_written"] > 0
        query = record["query"]
        assert query["errors"] == 0
        assert query["n_queries"] > 0
        assert query["latency_seconds"]["p95"] >= \
            query["latency_seconds"]["p50"]
        import json

        assert json.load(open(path))["schema"] == BENCH_INGEST_SCHEMA

    def test_run_ingest_rejects_bad_args(self, mini_workload):
        with pytest.raises(ValueError):
            run_ingest(mini_workload, readers=0)


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="T")

    def test_format_table_large_numbers(self):
        text = format_table([{"n": 1_234_567}])
        assert "1,234,567" in text

    def test_bar_chart_log_scale(self):
        text = format_bar_chart(
            ["q1", "q2"],
            {"scan": [1000.0, 10.0], "index": [1.0, 1.0]},
            log=True,
        )
        assert "q1" in text and "scan" in text
        assert "#" in text

    def test_bar_chart_zero_values(self):
        text = format_bar_chart(["q"], {"s": [0.0]})
        assert "0" in text
