"""Crash recovery: kills between the lifecycle's durability steps.

Each test freezes the directory at a point a real crash could produce
— image written but manifest not swapped, WAL appended but torn,
compaction output written but victims still live — then reopens and
proves the recovered state is exactly the last acknowledged one.
"""

import json
import os
import shutil

import pytest

from repro.errors import IngestError
from repro.index.builder import MultigramIndexBuilder
from repro.index.ingest import (
    MANIFEST_NAME,
    WAL_NAME,
    IngestDirectory,
    is_segment_file,
    read_manifest,
    write_manifest,
)
from repro.index.segmented import SegmentedFreeEngine
from repro.obs.registry import MetricsRegistry

BUILDER = MultigramIndexBuilder(threshold=0.3, max_gram_len=5)

TEXTS = [
    "the cat sat on the mat",
    "william jefferson clinton",
    "motorola mpc750 chip",
    "nothing to see here",
    "the cat ran fast",
    "buy this mp3 song now",
]


def open_dir(path, **kwargs):
    kwargs.setdefault("builder", BUILDER)
    kwargs.setdefault("registry", MetricsRegistry())
    return IngestDirectory(str(path), **kwargs)


def count(directory, pattern):
    engine = SegmentedFreeEngine(
        directory.corpus, directory.index, registry=MetricsRegistry()
    )
    with engine:
        return engine.count(pattern)


def segment_files(path):
    return sorted(n for n in os.listdir(str(path)) if is_segment_file(n))


class TestCrashBetweenImageAndManifest:
    def test_orphan_image_is_gced_and_docs_recover(self, tmp_path):
        with open_dir(tmp_path, memtable_docs=16) as directory:
            for text in TEXTS[:3]:
                directory.add(text)
            # Crash after the image write, before the manifest swap:
            # run only the first half of seal().
            units = [directory.corpus.get(i) for i in range(3)]
            name, _ = directory._write_segment_image(units)
            assert name in segment_files(tmp_path)
            assert read_manifest(str(tmp_path)).segments == []
        registry = MetricsRegistry()
        with open_dir(tmp_path, registry=registry) as reopened:
            # The orphan is gone; the docs are back in the memtable.
            assert segment_files(tmp_path) == []
            assert reopened.stats()["n_memtable"] == 3
            assert reopened.stats()["n_segments"] == 0
            assert count(reopened, "cat") == 1
        snapshot = registry.snapshot()
        assert sum(
            snapshot["free_ingest_orphans_gc_total"]["samples"].values()
        ) == 1

    def test_read_only_open_does_not_gc(self, tmp_path):
        with open_dir(tmp_path, memtable_docs=16) as directory:
            for text in TEXTS[:3]:
                directory.add(text)
            units = [directory.corpus.get(i) for i in range(3)]
            orphan, _ = directory._write_segment_image(units)
        with open_dir(tmp_path, read_only=True):
            pass
        # A read-only observer must not mutate the directory.
        assert orphan in segment_files(tmp_path)


class TestTornWal:
    def test_torn_final_line_is_dropped(self, tmp_path):
        with open_dir(tmp_path) as directory:
            for text in TEXTS[:2]:
                directory.add(text)
        wal = tmp_path / WAL_NAME
        with open(wal, "a", encoding="utf-8") as out:
            out.write('{"op": "add", "id": 2, "te')  # torn mid-record
        with open_dir(tmp_path) as reopened:
            # The torn record was never acknowledged: 2 docs, and the
            # next add re-uses the never-acknowledged id safely.
            assert len(reopened.corpus) == 2
            assert reopened.add("fresh") == 2

    def test_malformed_interior_record_fails_loudly(self, tmp_path):
        with open_dir(tmp_path) as directory:
            directory.add(TEXTS[0])
        wal = tmp_path / WAL_NAME
        original = wal.read_text()
        wal.write_text('{"op": "bogus"}\n' + original)
        with pytest.raises(IngestError, match="malformed WAL"):
            open_dir(tmp_path)

    def test_missing_wal_with_sealed_docs_fails_loudly(self, tmp_path):
        with open_dir(tmp_path, memtable_docs=2) as directory:
            for text in TEXTS[:2]:
                directory.add(text)
        os.unlink(tmp_path / WAL_NAME)
        with pytest.raises(IngestError, match="no WAL record"):
            open_dir(tmp_path)


class TestCrashMidCompaction:
    def test_manifest_swap_failure_preserves_old_state(
        self, tmp_path, monkeypatch
    ):
        directory = open_dir(tmp_path, memtable_docs=2,
                             auto_compact=False)
        for text in TEXTS:
            directory.add(text)
        directory.delete(1)
        expect = {q: count(directory, q) for q in ("cat", "clinton")}
        images_before = segment_files(tmp_path)
        generation = directory.generation

        # The merged image hits disk, then the machine dies before the
        # manifest swap.
        import repro.index.ingest as ingest_mod

        def explode(dirpath, manifest):
            raise OSError("simulated power loss")

        monkeypatch.setattr(ingest_mod, "write_manifest", explode)
        with pytest.raises(OSError, match="power loss"):
            directory.compact()
        monkeypatch.undo()
        directory.close()

        with open_dir(tmp_path, memtable_docs=2) as reopened:
            # The orphaned merge output was GC'd; the victims (still
            # referenced by the durable manifest) survived.
            assert segment_files(tmp_path) == images_before
            assert reopened.generation == generation
            got = {q: count(reopened, q) for q in ("cat", "clinton")}
            assert got == expect
            # And the directory is fully operational: retry succeeds.
            reopened.compact()
            assert reopened.stats()["n_segments"] == 1
            assert {
                q: count(reopened, q) for q in ("cat", "clinton")
            } == expect

    def test_wal_checkpoint_failure_keeps_old_log(
        self, tmp_path, monkeypatch
    ):
        directory = open_dir(tmp_path, memtable_docs=2,
                             auto_compact=False)
        for text in TEXTS:
            directory.add(text)
        directory.delete(1)

        real_replace = os.replace

        def explode(src, dst):
            if os.path.basename(dst) == WAL_NAME:
                raise OSError("simulated power loss")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="power loss"):
            directory.compact()
        monkeypatch.undo()
        directory.close()

        with open_dir(tmp_path, memtable_docs=2) as reopened:
            assert len(reopened.corpus) == len(TEXTS) - 1
            assert count(reopened, "cat") == 2


class TestCorruptDirectory:
    def test_lost_segment_image_fails_loudly(self, tmp_path):
        with open_dir(tmp_path, memtable_docs=2) as directory:
            for text in TEXTS[:2]:
                directory.add(text)
        os.unlink(tmp_path / segment_files(tmp_path)[0])
        with pytest.raises(IngestError, match="lost segment image"):
            open_dir(tmp_path)

    def test_phantom_tombstone_fails_loudly(self, tmp_path):
        with open_dir(tmp_path, memtable_docs=2) as directory:
            for text in TEXTS[:2]:
                directory.add(text)
        manifest = read_manifest(str(tmp_path))
        manifest.tombstones = [99]
        manifest.generation += 1
        write_manifest(str(tmp_path), manifest)
        with pytest.raises(IngestError, match="tombstone 99"):
            open_dir(tmp_path)

    def test_truncated_manifest_fails_loudly(self, tmp_path):
        with open_dir(tmp_path) as directory:
            directory.add(TEXTS[0])
        payload = (tmp_path / MANIFEST_NAME).read_text()
        (tmp_path / MANIFEST_NAME).write_text(payload[: len(payload) // 2])
        with pytest.raises(IngestError, match="unreadable manifest"):
            open_dir(tmp_path)

    def test_copy_of_directory_is_equivalent(self, tmp_path):
        """An rsync-style snapshot of a quiesced directory serves the
        same answers — nothing depends on absolute paths or inodes."""
        src = tmp_path / "src"
        with open_dir(src, memtable_docs=2) as directory:
            for text in TEXTS:
                directory.add(text)
            directory.delete(4)
            expect = {q: count(directory, q) for q in ("cat", "mp3")}
        dst = tmp_path / "dst"
        shutil.copytree(src, dst)
        with open_dir(dst, read_only=True) as copy:
            assert {q: count(copy, q) for q in ("cat", "mp3")} == expect


class TestAcknowledgedSurvivesCrash:
    def test_every_acknowledged_add_survives(self, tmp_path):
        """Close is *not* required for durability: state rebuilt from
        disk alone (simulating a process kill) equals the acknowledged
        state, whether or not a seal intervened."""
        directory = open_dir(tmp_path, memtable_docs=3,
                             auto_compact=False)
        acknowledged = {}
        for position, text in enumerate(TEXTS):
            doc_id = directory.add(text)
            acknowledged[doc_id] = text
            if position == 3:
                directory.delete(0)
                del acknowledged[0]
        # Kill: no close(), no flush beyond what add() already did.
        del directory
        with open_dir(tmp_path, memtable_docs=3) as reopened:
            survivors = {
                unit.doc_id: unit.text for unit in reopened.corpus
            }
            assert survivors == acknowledged

    def test_wal_fsynced_before_manifest_claims_sealed(self, tmp_path):
        """After a seal, every sealed doc's text must be recoverable
        from disk — the WAL fsync precedes the manifest swap."""
        with open_dir(tmp_path, memtable_docs=2) as directory:
            directory.add(TEXTS[0])
            directory.add(TEXTS[1])  # triggers the seal
            manifest = read_manifest(str(tmp_path))
            assert manifest.segments, "expected a sealed segment"
            sealed_ids = {
                i for record in manifest.segments
                for i in record.doc_ids
            }
            with open(tmp_path / WAL_NAME, encoding="utf-8") as infile:
                wal_ids = {
                    json.loads(line)["id"] for line in infile
                    if json.loads(line)["op"] == "add"
                }
            assert sealed_ids <= wal_ids
