"""Logical and physical plan tests (Figures 5-7, Table 2, Section 4.3)."""

import pytest

from repro.corpus.store import InMemoryCorpus
from repro.index.multigram import GramIndex
from repro.index.postings import PostingsList
from repro.plan.cost import estimate_cost, estimate_selectivity
from repro.plan.logical import LogicalPlan
from repro.plan.physical import (
    CoverPolicy,
    PAll,
    PAnd,
    PCover,
    PLookup,
    POr,
    PhysicalPlan,
)
from repro.regex.rewrite import ReqAnd, ReqAny, ReqGram, ReqOr


def index_with(postings_map, n_docs=10):
    postings = {
        key: PostingsList.from_ids(ids) for key, ids in postings_map.items()
    }
    return GramIndex(postings, kind="multigram", n_docs=n_docs, threshold=0.5)


class TestLogicalPlan:
    def test_running_example(self):
        plan = LogicalPlan.from_pattern("(Bill|William).*Clinton")
        assert plan.root == ReqAnd((
            ReqOr((ReqGram("Bill"), ReqGram("William"))),
            ReqGram("Clinton"),
        ))
        assert not plan.is_null
        assert plan.grams() == ["Bill", "William", "Clinton"]

    def test_null_plan_queries(self):
        """zip/phone/html-style queries produce NULL logical plans."""
        from repro.bench.queries import BENCHMARK_QUERIES, NULL_PLAN_QUERIES

        for name in NULL_PLAN_QUERIES:
            plan = LogicalPlan.from_pattern(
                BENCHMARK_QUERIES[name], min_gram_len=3
            )
            assert plan.is_null, name

    def test_indexable_queries_not_null(self):
        from repro.bench.queries import BENCHMARK_QUERIES, NULL_PLAN_QUERIES

        for name, pattern in BENCHMARK_QUERIES.items():
            if name in NULL_PLAN_QUERIES:
                continue
            plan = LogicalPlan.from_pattern(pattern, min_gram_len=3)
            assert not plan.is_null, name

    def test_from_ast(self):
        from repro.regex.parser import parse

        plan = LogicalPlan.from_pattern(parse("abc"))
        assert plan.root == ReqGram("abc")

    def test_pretty_renders(self):
        plan = LogicalPlan.from_pattern("(a.*b)|zz")
        text = plan.pretty()
        assert "OR" in text or "NULL" in text


class TestPhysicalCompile:
    def test_exact_key_available(self):
        index = index_with({"Clinton": [1, 2]})
        logical = LogicalPlan.from_pattern("Clinton")
        plan = PhysicalPlan.compile(logical, index)
        assert plan.root == PLookup("Clinton")

    def test_paper_section_43_example(self):
        """William -> Willi AND liam; Clinton -> Clint AND nton;
        Bill -> NULL (Figure 7)."""
        index = index_with({
            "Willi": [1], "liam": [1, 2], "Clint": [2], "nton": [2, 3],
        })
        logical = LogicalPlan.from_pattern("(Bill|William).*Clinton")
        plan = PhysicalPlan.compile(logical, index)
        # Bill unavailable -> its OR branch is ALL -> whole OR is ALL ->
        # plan reduces to the Clinton cover.
        assert plan.root == PCover((PLookup("Clint"), PLookup("nton")))
        assert "Bill" in plan.unavailable_grams

    def test_pruned_gram_uses_substring_cover(self):
        index = index_with({"llia": [1], "ia": [1, 2]})
        logical = LogicalPlan.from_pattern("William")
        plan = PhysicalPlan.compile(logical, index)
        assert plan.root == PCover((PLookup("llia"), PLookup("ia")))

    def test_nothing_available_is_full_scan(self):
        index = index_with({"zz": [1]})
        logical = LogicalPlan.from_pattern("William")
        plan = PhysicalPlan.compile(logical, index)
        assert plan.is_full_scan
        assert plan.unavailable_grams == ("William",)

    def test_or_with_one_null_branch_floods(self):
        index = index_with({"abc": [1]})
        logical = LogicalPlan.from_pattern("abc|qqq")
        plan = PhysicalPlan.compile(logical, index)
        assert plan.is_full_scan

    def test_or_with_both_available(self):
        index = index_with({"abc": [1], "qqq": [2]})
        logical = LogicalPlan.from_pattern("abc|qqq")
        plan = PhysicalPlan.compile(logical, index)
        assert plan.root == POr((PLookup("abc"), PLookup("qqq")))

    def test_and_drops_null_side(self):
        index = index_with({"abc": [1]})
        logical = LogicalPlan.from_pattern("abc.*qqq")
        plan = PhysicalPlan.compile(logical, index)
        assert plan.root == PLookup("abc")

    def test_lookups_listing(self):
        index = index_with({"abc": [1], "qqq": [2]})
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("abc.*qqq"), index
        )
        assert set(plan.lookups()) == {"abc", "qqq"}

    def test_dedup_identical_lookups(self):
        index = index_with({"ab": [1]})
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("ab.*ab"), index
        )
        assert plan.root == PLookup("ab")

    def test_pretty(self):
        index = index_with({"abc": [1]})
        plan = PhysicalPlan.compile(LogicalPlan.from_pattern("abc"), index)
        assert "LOOKUP" in plan.pretty()


class TestCoverPolicies:
    def test_best_picks_rarest(self):
        index = index_with({"llia": [1], "ia": [1, 2, 3, 4]})
        logical = LogicalPlan.from_pattern("William")
        plan = PhysicalPlan.compile(logical, index, CoverPolicy.BEST)
        assert plan.root == PLookup("llia")

    def test_cheapest2_picks_two(self):
        index = index_with({
            "llia": [1], "ia": [1, 2, 3, 4], "Wil": [1, 2],
        })
        logical = LogicalPlan.from_pattern("William")
        plan = PhysicalPlan.compile(logical, index, CoverPolicy.CHEAPEST2)
        assert plan.root == PCover((PLookup("llia"), PLookup("Wil")))

    def test_policy_accepts_strings(self):
        index = index_with({"ab": [1]})
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("ab"), index, "best"
        )
        assert plan.root == PLookup("ab")

    def test_policies_all_sound(self):
        """All policies produce supersets of the exact-key plan result."""
        from repro.engine.executor import execute_plan

        index = index_with({
            "llia": [1, 5], "ia": [1, 2, 5], "Wil": [1, 5, 7],
        })
        logical = LogicalPlan.from_pattern("William")
        results = {}
        for policy in CoverPolicy:
            plan = PhysicalPlan.compile(logical, index, policy)
            results[policy] = set(execute_plan(plan, index))
        # ALL is the tightest; the others must contain it
        assert results[CoverPolicy.BEST] >= results[CoverPolicy.ALL]
        assert results[CoverPolicy.CHEAPEST2] >= results[CoverPolicy.ALL]


class TestCoverNode:
    def test_cover_emitted_for_pruned_grams(self):
        index = index_with({"llia": [1], "ia": [1, 2]})
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("William"), index
        )
        assert isinstance(plan.root, PCover)

    def test_cover_executes_like_and(self):
        from repro.engine.executor import execute_plan

        index = index_with({"llia": [1, 3], "ia": [1, 2, 3]})
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("William"), index
        )
        assert execute_plan(plan, index) == [1, 3]

    def test_cover_is_not_plain_and(self):
        # A COVER's children are correlated; the cost model estimates it
        # as min-selectivity, not the independence product.  Merging the
        # two in _dedup would silently flip the estimate, so they must
        # not compare (or hash) equal in either direction.
        children = (PLookup("a"), PLookup("b"))
        assert PCover(children) != PAnd(children)
        assert PAnd(children) != PCover(children)
        assert hash(PCover(children)) != hash(PAnd(children))
        assert PCover(children) == PCover(children)
        assert PAnd(children) == PAnd(children)

    def test_dedup_keeps_cover_and_and_apart(self):
        from repro.plan.physical import _dedup

        children = (PLookup("a"), PLookup("b"))
        kept = _dedup([PCover(children), PAnd(children)])
        assert len(kept) == 2

    def test_render_prints_cover(self):
        plan = PhysicalPlan(
            pattern="x", root=PCover((PLookup("a"), PLookup("b")))
        )
        text = plan.pretty()
        assert "COVER" in text
        assert "AND" not in text

    def test_cover_selectivity_is_min(self):
        index = index_with({"ab": [1], "bc": [1, 2, 3, 4]}, n_docs=10)
        cover = PCover((PLookup("ab"), PLookup("bc")))
        plain = PAnd((PLookup("ab"), PLookup("bc")))
        assert estimate_selectivity(cover, index) == pytest.approx(0.1)
        assert estimate_selectivity(plain, index) == pytest.approx(0.04)

    def test_cover_repr(self):
        assert "COVER" in repr(PCover((PLookup("x"), PLookup("y"))))


class TestCostModel:
    def test_lookup_selectivity(self):
        index = index_with({"ab": [1, 2, 3]}, n_docs=10)
        assert estimate_selectivity(PLookup("ab"), index) == 0.3

    def test_and_multiplies(self):
        index = index_with({"ab": [1, 2, 3], "cd": [1, 2]}, n_docs=10)
        node = PAnd((PLookup("ab"), PLookup("cd")))
        assert estimate_selectivity(node, index) == pytest.approx(0.06)

    def test_or_adds_capped(self):
        index = index_with(
            {"ab": list(range(8)), "cd": list(range(8))}, n_docs=10
        )
        node = POr((PLookup("ab"), PLookup("cd")))
        assert estimate_selectivity(node, index) == 1.0

    def test_all_is_one(self):
        index = index_with({})
        assert estimate_selectivity(PAll(), index) == 1.0

    def test_estimate_cost_scan_vs_index(self):
        # sel = 1/100 far below 1/random_multiplier -> the index wins
        index = index_with({"rare": [1]}, n_docs=100)
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("rare"), index
        )
        cost = estimate_cost(plan, index, corpus_chars=10_000)
        assert cost.beats_scan
        assert cost.candidate_units == 1.0

    def test_estimate_cost_common_gram_loses(self):
        # sel = 0.1 at multiplier 10 is break-even or worse
        index = index_with({"the": list(range(10))}, n_docs=100)
        plan = PhysicalPlan.compile(
            LogicalPlan.from_pattern("the"), index
        )
        cost = estimate_cost(plan, index, corpus_chars=10_000)
        assert not cost.beats_scan

    def test_full_scan_plan_costs_scan(self):
        index = index_with({})
        plan = PhysicalPlan.compile(LogicalPlan.from_pattern("zzz"), index)
        cost = estimate_cost(plan, index, corpus_chars=5_000)
        assert cost.io_cost == cost.scan_io_cost
