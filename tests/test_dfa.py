"""DFA tests: eager subset construction, minimization, lazy DFA parity."""

import pytest

from repro.regex.dfa import DFA, LazyDFA, build_dfa
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse


def dfa_of(pattern: str, minimize=True) -> DFA:
    return build_dfa(build_nfa(parse(pattern)), minimize=minimize)


class TestAcceptance:
    @pytest.mark.parametrize(
        "pattern,good,bad",
        [
            ("abc", ["abc"], ["ab", "abcd", "xbc", ""]),
            ("a*b", ["b", "ab", "aaab"], ["a", "ba", ""]),
            ("(a|b)+", ["a", "ba", "abba"], ["", "c", "ac"]),
            ("a.c", ["abc", "a.c", "azc"], ["ac", "abbc"]),
            ("[0-9]{2}", ["42"], ["4", "421", "ab"]),
            ("x(y|)z", ["xyz", "xz"], ["x", "xyyz"]),
        ],
    )
    def test_accepts(self, pattern, good, bad):
        dfa = dfa_of(pattern)
        for text in good:
            assert dfa.accepts(text), (pattern, text)
        for text in bad:
            assert not dfa.accepts(text), (pattern, text)

    def test_matches_empty(self):
        assert dfa_of("a*").matches_empty()
        assert not dfa_of("a+").matches_empty()

    def test_foreign_character_rejects(self):
        dfa = dfa_of(".*")
        assert not dfa.accepts("\x00")


class TestMinimization:
    def test_minimized_not_larger(self):
        raw = dfa_of("(a|b)*abb", minimize=False)
        small = dfa_of("(a|b)*abb", minimize=True)
        assert small.state_count <= raw.state_count

    def test_equivalent_patterns_same_size(self):
        # a+ and aa* denote the same language -> same minimal DFA size.
        a = dfa_of("a+")
        b = dfa_of("aa*")
        assert a.state_count == b.state_count

    def test_language_preserved(self):
        texts = ["", "a", "b", "ab", "abb", "aabb", "babb", "abab"]
        raw = dfa_of("(a|b)*abb", minimize=False)
        small = dfa_of("(a|b)*abb", minimize=True)
        for text in texts:
            assert raw.accepts(text) == small.accepts(text)

    def test_dead_state_is_zero(self):
        dfa = dfa_of("abc")
        # every transition out of state 0 loops on 0 and it never accepts
        assert not dfa.accepting[0]
        assert all(t == 0 for t in dfa.table[0])


class TestScanPrimitives:
    def test_first_accept_end_search(self):
        # search automaton for .*abc
        dfa = dfa_of(".*abc")
        assert dfa.first_accept_end("xxabcxx", 0) == 5
        assert dfa.first_accept_end("abc", 0) == 3
        assert dfa.first_accept_end("ab", 0) == -1

    def test_first_accept_end_respects_start(self):
        dfa = dfa_of(".*ab")
        assert dfa.first_accept_end("abxab", 1) == 5

    def test_last_accept_forward(self):
        dfa = dfa_of("a+")
        assert dfa.last_accept_forward("aaab", 0) == 3
        assert dfa.last_accept_forward("baaa", 0) == -1

    def test_last_accept_backward(self):
        # reversed pattern of "ab+" is "b+a"
        dfa = dfa_of("b+a")
        # text "xabb", match of ab+ is at [1,4); scanning backwards from 4
        assert dfa.last_accept_backward("xabb", 4, 0) == 1


class TestLazyDFA:
    @pytest.mark.parametrize(
        "pattern,texts",
        [
            ("abc", ["abc", "ab", "abcd", ""]),
            ("(a|b)*abb", ["abb", "aabb", "ab", ""]),
            ("a{2,4}", ["a", "aa", "aaa", "aaaa", "aaaaa"]),
            (".*foo", ["xfoo", "foo", "fo"]),
        ],
    )
    def test_parity_with_eager(self, pattern, texts):
        nfa = build_nfa(parse(pattern))
        eager = build_dfa(nfa)
        lazy = LazyDFA(nfa)
        for text in texts:
            assert eager.accepts(text) == lazy.accepts(text), (pattern, text)

    def test_scan_primitive_parity(self):
        pattern = ".*ab"
        nfa = build_nfa(parse(pattern))
        eager = build_dfa(nfa)
        lazy = LazyDFA(nfa)
        text = "xxabyyabzz"
        assert (
            eager.first_accept_end(text, 0)
            == lazy.first_accept_end(text, 0)
        )

    def test_cache_flush_keeps_answers(self):
        nfa = build_nfa(parse("(a|b)*abb"))
        lazy = LazyDFA(nfa, cache_limit=3)  # absurdly small: force flushes
        text = "abab" * 50 + "abb"
        assert lazy.accepts(text)
        assert lazy.flush_count > 0

    def test_counted_gap_under_search_terminates(self):
        # The pattern class that blows up eager subset construction.
        nfa = build_nfa(parse(".*>.{0,50}sig"))
        lazy = LazyDFA(nfa)
        assert lazy.first_accept_end(">" + "x" * 30 + "sig", 0) > 0
        assert lazy.first_accept_end(">" + "x" * 80 + "sig", 0) == -1

    def test_matches_empty(self):
        nfa = build_nfa(parse("a*"))
        assert LazyDFA(nfa).matches_empty()

    def test_eager_blowup_guard(self):
        nfa = build_nfa(parse(".*a.{0,60}b.{0,60}c"))
        with pytest.raises(ValueError):
            build_dfa(nfa, max_states=50)
