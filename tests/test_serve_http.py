"""Protocol-level tests for the minimal HTTP layer of ``free serve``."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import FreeError
from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    Request,
    Response,
    error_response,
    parse_response_bytes,
    read_request,
)


def parse(raw: bytes):
    """Run read_request over a fed-and-closed stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def raw_request(
    method="POST",
    target="/search",
    headers=(),
    body=b"",
    version="HTTP/1.1",
):
    lines = [f"{method} {target} {version}"]
    lines += [f"{k}: {v}" for k, v in headers]
    if body:
        lines.append(f"Content-Length: {len(body)}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


class TestReadRequest:
    def test_basic_post_with_body(self):
        body = json.dumps({"pattern": "abc"}).encode()
        req = parse(raw_request(body=body))
        assert req.method == "POST"
        assert req.path == "/search"
        assert req.body == body
        assert req.json() == {"pattern": "abc"}
        assert req.keep_alive

    def test_query_string_parsed_and_path_split(self):
        req = parse(
            raw_request(
                method="GET", target="/explain?pattern=a%2Bb&analyze=1"
            )
        )
        assert req.path == "/explain"
        assert req.query == {"pattern": "a+b", "analyze": "1"}

    def test_header_names_lowercased(self):
        req = parse(
            raw_request(
                method="GET", target="/", headers=[("X-Weird-CASE", "v")]
            )
        )
        assert req.headers["x-weird-case"] == "v"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_http10_defaults_to_close(self):
        req = parse(raw_request(method="GET", target="/", version="HTTP/1.0"))
        assert not req.keep_alive

    def test_connection_close_honoured(self):
        req = parse(
            raw_request(
                method="GET", target="/", headers=[("Connection", "close")]
            )
        )
        assert not req.keep_alive

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nHost: x")  # EOF mid-head
        assert err.value.status == 400

    def test_unsupported_protocol_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / SPDY/99\r\n\r\n")
        assert err.value.status == 400

    def test_chunked_transfer_encoding_is_411(self):
        with pytest.raises(HttpError) as err:
            parse(
                raw_request(
                    headers=[("Transfer-Encoding", "chunked")]
                )
            )
        assert err.value.status == 411

    def test_oversize_head_is_431(self):
        big = raw_request(
            method="GET",
            target="/",
            headers=[("X-Pad", "y" * (MAX_HEADER_BYTES + 10))],
        )
        with pytest.raises(HttpError) as err:
            parse(big)
        assert err.value.status == 431

    def test_oversize_body_is_413(self):
        head = (
            f"POST / HTTP/1.1\r\n"
            f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
        ).encode()
        with pytest.raises(HttpError) as err:
            parse(head)
        assert err.value.status == 413

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_negative_content_length_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert err.value.status == 400

    def test_connection_closed_mid_body_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert err.value.status == 400


class TestRequestJson:
    def _req(self, body: bytes) -> Request:
        return Request(
            method="POST",
            target="/",
            path="/",
            query={},
            headers={},
            body=body,
        )

    def test_empty_body_is_400(self):
        with pytest.raises(HttpError) as err:
            self._req(b"").json()
        assert err.value.status == 400

    def test_malformed_json_is_400(self):
        with pytest.raises(HttpError) as err:
            self._req(b"{nope").json()
        assert err.value.status == 400

    def test_non_object_json_is_400(self):
        with pytest.raises(HttpError) as err:
            self._req(b"[1, 2]").json()
        assert err.value.status == 400


class TestResponse:
    def test_json_roundtrip_through_parser(self):
        resp = Response.from_json({"b": 2, "a": 1})
        status, headers, body = parse_response_bytes(resp.encode())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert int(headers["content-length"]) == len(body)
        # sort_keys: the serialization is deterministic.
        assert body == b'{"a": 1, "b": 2}\n'

    def test_keep_alive_header(self):
        resp = Response.from_text("hi")
        _s, open_headers, _b = parse_response_bytes(
            resp.encode(keep_alive=True)
        )
        _s, close_headers, _b = parse_response_bytes(
            resp.encode(keep_alive=False)
        )
        assert open_headers["connection"] == "keep-alive"
        assert close_headers["connection"] == "close"

    def test_extra_headers_rendered(self):
        resp = error_response(
            429, "full", headers={"Retry-After": "1"}
        )
        status, headers, body = parse_response_bytes(resp.encode())
        assert status == 429
        assert headers["retry-after"] == "1"
        payload = json.loads(body)
        assert payload == {"error": "full", "status": 429}

    def test_parse_rejects_garbage(self):
        with pytest.raises(FreeError):
            parse_response_bytes(b"not a response")
        with pytest.raises(FreeError):
            parse_response_bytes(b"HTTP/1.1 nope\r\n\r\n")
