"""Engine lifecycle regressions: fork-registry leaks, close semantics,
and epoch-keyed plan caching under long-lived engines.

The ``free serve`` service holds engines for the life of the process,
which turned two latent bugs into real ones:

* a :class:`ShardedFreeEngine` whose ``close()`` was never reached left
  its ``_FORK_SHARED`` registry entry behind forever (the registry held
  a strong reference, so the engine could not even be collected);
* the plan cache was keyed without the index epoch, so an engine kept
  warm across a mutable index's epoch bump could execute a stale
  physical plan — and silently drop candidates whose grams the
  mutation removed.
"""

from __future__ import annotations

import gc

import pytest

from repro.corpus.document import DataUnit
from repro.corpus.store import InMemoryCorpus
from repro.engine.free import FreeEngine
from repro.engine.sharded import _FORK_SHARED, ShardedFreeEngine
from repro.index.builder import build_multigram_index
from repro.index.sharded import ShardedIndex


@pytest.fixture(scope="module")
def small_corpus():
    return InMemoryCorpus([
        DataUnit(i, f"unit {i} powerpc stanford filler text block")
        for i in range(24)
    ])


@pytest.fixture(scope="module")
def small_sharded(small_corpus):
    return ShardedIndex.build(small_corpus, 2, threshold=0.3)


class TestForkRegistryLifecycle:
    def test_close_pops_the_fork_token(
        self, small_corpus, small_sharded
    ):
        engine = ShardedFreeEngine(
            small_corpus, small_sharded, workers=2
        )
        engine._ensure_pool()
        token = engine._fork_token
        assert token is not None and token in _FORK_SHARED
        engine.close()
        assert token not in _FORK_SHARED
        assert engine._fork_token is None

    def test_close_is_idempotent(self, small_corpus, small_sharded):
        engine = ShardedFreeEngine(
            small_corpus, small_sharded, workers=2
        )
        engine._ensure_pool()
        engine.close()
        engine.close()  # second close: no error, still unregistered
        assert engine._fork_token is None

    def test_context_manager_pops_the_token(
        self, small_corpus, small_sharded
    ):
        with ShardedFreeEngine(
            small_corpus, small_sharded, workers=2
        ) as engine:
            engine._ensure_pool()
            token = engine._fork_token
            assert token in _FORK_SHARED
        assert token not in _FORK_SHARED

    def test_abandoned_engines_leave_a_bounded_registry(
        self, small_corpus, small_sharded
    ):
        """Construct-and-drop in a loop WITHOUT close(): no leak.

        This is the serve/bench failure mode — an exception (or a
        careless caller) skips close().  The weakref registry plus the
        GC finalizer must still retire every token.
        """
        before = len(_FORK_SHARED)
        tokens = []
        for _ in range(10):
            engine = ShardedFreeEngine(
                small_corpus, small_sharded, workers=2
            )
            engine._ensure_pool()  # registers the fork token
            tokens.append(engine._fork_token)
            del engine  # dropped with no close()
        gc.collect()
        assert len(_FORK_SHARED) == before
        assert all(token not in _FORK_SHARED for token in tokens)

    def test_registry_reference_does_not_pin_the_engine(
        self, small_corpus, small_sharded
    ):
        import weakref

        engine = ShardedFreeEngine(
            small_corpus, small_sharded, workers=2
        )
        engine._ensure_pool()
        probe = weakref.ref(engine)
        del engine
        gc.collect()
        # A strong registry entry would keep this alive forever.
        assert probe() is None

    def test_parallel_search_still_works_through_weak_registry(
        self, small_corpus, small_sharded
    ):
        with ShardedFreeEngine(
            small_corpus, small_sharded, workers=2
        ) as engine:
            report = engine.search("powerpc", collect_matches=False)
            assert report.n_matches == len(small_corpus)


class TestFreeEngineClose:
    def test_context_manager_clears_caches(self, small_corpus):
        index = build_multigram_index(small_corpus, threshold=0.3)
        with FreeEngine(small_corpus, index) as engine:
            engine.search("powerpc", collect_matches=False)
            assert len(engine._plan_cache) > 0
        assert len(engine._plan_cache) == 0


class TestPlanCacheEpoch:
    def test_epoch_bump_invalidates_cached_plans(self, small_corpus):
        """A warm engine must re-plan after the index bumps its epoch.

        This is the serve scenario: the service holds one engine for
        days while a mutable index (the segmented wrapper) applies
        updates, each bumping ``epoch``.  A stale physical plan can
        reference gram keys a mutation removed — wrong *results*, not
        just wrong speed — so the epoch rides in the plan-cache key.
        """
        index = build_multigram_index(small_corpus, threshold=0.3)
        engine = FreeEngine(small_corpus, index)
        first = engine.plan("stanford")
        assert engine.plan("stanford") is first  # warm: cached pair
        # The mutable-index protocol (FREE005): mutate, bump epoch.
        index.epoch = index.epoch + 1
        replanned = engine.plan("stanford")
        assert replanned is not first
        # And the new plan is itself cached at the new epoch.
        assert engine.plan("stanford") is replanned

    def test_stale_epoch_entries_do_not_resurface(self, small_corpus):
        index = build_multigram_index(small_corpus, threshold=0.3)
        engine = FreeEngine(small_corpus, index)
        at_zero = engine.plan("powerpc")
        index.epoch = 1
        at_one = engine.plan("powerpc")
        index.epoch = 0  # roll back (e.g. snapshot restore)
        # Epoch 0's entry may legitimately still be cached — but it
        # must be the *epoch 0* plan, never epoch 1's.
        assert engine.plan("powerpc") is at_zero
        index.epoch = 1
        assert engine.plan("powerpc") is at_one

    def test_search_results_follow_the_epoch(self, small_corpus):
        """End to end: post-bump searches reflect re-planning."""
        index = build_multigram_index(small_corpus, threshold=0.3)
        engine = FreeEngine(
            small_corpus, index, candidate_cache_size=8
        )
        r1 = engine.search("stanford", collect_matches=False)
        index.epoch = index.epoch + 1
        r2 = engine.search("stanford", collect_matches=False)
        # Same (unchanged) index contents: identical answers, but the
        # second run re-planned and re-executed rather than serving
        # epoch-0 cache entries.
        assert r2.n_matches == r1.n_matches
        assert r2.metrics is not None
        assert not r2.metrics.plan_cache_hit
