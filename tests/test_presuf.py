"""Presuf shell tests: Definition 3.12 properties + Observation 3.13."""

from hypothesis import given, settings, strategies as st

from repro.index.presuf import (
    covers,
    is_suffix_free,
    presuf_shell,
    presuf_shell_naive,
)


class TestExamples:
    def test_paper_example_3_10(self):
        """Keep only ="k out of the <a href="k suffix chain."""
        keys = {'<a href="k', 'a href="k', ' href="k', '="k'}
        assert presuf_shell(keys) == {'="k'}

    def test_no_suffix_relations_keeps_all(self):
        keys = {"abc", "def", "ghi"}
        assert presuf_shell(keys) == keys

    def test_single_key(self):
        assert presuf_shell({"x"}) == {"x"}

    def test_empty(self):
        assert presuf_shell(set()) == set()

    def test_chain_keeps_shortest(self):
        keys = {"a", "ba", "cba", "dcba"}
        assert presuf_shell(keys) == {"a"}

    def test_two_chains(self):
        keys = {"xa", "ya", "zb", "wb"}
        # no key is a suffix of another here (all length 2, distinct)
        assert presuf_shell(keys) == keys

    def test_mixed(self):
        keys = {"on", "ton", "nton", "x"}
        assert presuf_shell(keys) == {"on", "x"}


def _make_prefix_free(keys):
    """Greedily drop keys that have a proper prefix in the set."""
    kept = set()
    for key in sorted(keys, key=len):
        if not any(key.startswith(other) for other in kept):
            kept.add(key)
    return kept


prefix_free_sets = st.sets(
    st.text(alphabet="abc", min_size=1, max_size=5),
    min_size=0,
    max_size=12,
).map(_make_prefix_free)


class TestDefinition312:
    """The three defining properties, on generated prefix-free sets."""

    @settings(max_examples=200, deadline=None)
    @given(keys=prefix_free_sets)
    def test_shell_is_subset(self, keys):
        assert presuf_shell(keys) <= keys

    @settings(max_examples=200, deadline=None)
    @given(keys=prefix_free_sets)
    def test_shell_is_suffix_free(self, keys):
        assert is_suffix_free(presuf_shell(keys))

    @settings(max_examples=200, deadline=None)
    @given(keys=prefix_free_sets)
    def test_shell_covers_input(self, keys):
        assert covers(presuf_shell(keys), keys)

    @settings(max_examples=200, deadline=None)
    @given(keys=prefix_free_sets)
    def test_matches_naive_reference(self, keys):
        assert presuf_shell(keys) == presuf_shell_naive(keys)

    @settings(max_examples=200, deadline=None)
    @given(keys=prefix_free_sets)
    def test_idempotent(self, keys):
        shell = presuf_shell(keys)
        assert presuf_shell(shell) == shell


class TestSuffixFreeCheck:
    def test_positive(self):
        assert is_suffix_free({"ab", "cd"})

    def test_negative(self):
        assert not is_suffix_free({"ab", "b"})

    def test_suffix_pair_among_others(self):
        assert not is_suffix_free({"ab", "b", "cb"})

    def test_suffix_free_with_shared_last_char(self):
        # all end in 'b' but none is a suffix of another
        assert is_suffix_free({"ab", "bb", "axb"})


class TestCovers:
    def test_covers_positive(self):
        assert covers({"on"}, {"ton", "nton", "on"})

    def test_covers_negative(self):
        assert not covers({"on"}, {"ton", "xyz"})
