"""Property-based cross-backend equivalence for the postings kernels.

For arbitrary sorted id lists — including empty lists, single ids,
ids past 2**35 and right at the int64 edge — every numpy kernel
operation must return exactly what the python reference returns, and
the cursor path must agree block-for-block on blocked lists with
first_k truncation landing on and across block boundaries.  The whole
module skips when numpy is absent (the python kernel *is* the
reference, so there is nothing to compare).
"""

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.index.kernels import NumpyKernel, PythonKernel  # noqa: E402
from repro.index.postings import (  # noqa: E402
    BlockCursor,
    BlockedPostingsList,
    ListCursor,
)

PY = PythonKernel()


def sorted_ids(max_value=200, max_size=40):
    return st.lists(
        st.integers(0, max_value), max_size=max_size, unique=True
    ).map(sorted)


# Mixes everyday ids with ones past 2**35 and wedged against 2**63-1 /
# beyond it, so int64 edge handling and the overflow fallback both get
# exercised by the same properties.
def edge_ids():
    return st.lists(
        st.one_of(
            st.integers(0, 100),
            st.integers(2**35, 2**35 + 50),
            st.integers(2**63 - 4, 2**63 + 4),
        ),
        max_size=20,
        unique=True,
    ).map(sorted)


@settings(max_examples=200, deadline=None)
@given(st.lists(sorted_ids(), min_size=1, max_size=4))
def test_intersect_many_matches_python(lists):
    assert NumpyKernel().intersect_many(lists) == PY.intersect_many(lists)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(sorted_ids(), min_size=1, max_size=4),
    st.one_of(st.none(), st.integers(0, 30)),
)
def test_union_many_matches_python(lists, limit):
    assert NumpyKernel().union_many(lists, limit) == \
        PY.union_many(lists, limit)


@settings(max_examples=200, deadline=None)
@given(sorted_ids(), sorted_ids())
def test_pairwise_ops_match_python(a, b):
    kernel = NumpyKernel()
    assert kernel.intersect_sorted(a, b) == PY.intersect_sorted(a, b)
    assert kernel.difference_sorted(a, b) == PY.difference_sorted(a, b)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(edge_ids(), min_size=1, max_size=3),
    st.one_of(st.none(), st.integers(0, 10)),
)
def test_edge_ids_match_python(lists, limit):
    kernel = NumpyKernel()
    assert kernel.intersect_many(lists) == PY.intersect_many(lists)
    assert kernel.union_many(lists, limit) == PY.union_many(lists, limit)
    if len(lists) >= 2:
        assert kernel.intersect_sorted(lists[0], lists[1]) == \
            PY.intersect_sorted(lists[0], lists[1])
        assert kernel.difference_sorted(lists[0], lists[1]) == \
            PY.difference_sorted(lists[0], lists[1])


def _cursors(id_lists, block_size):
    """One blocked cursor per list; empty lists become list cursors
    (the writer never emits a blocked list with zero ids)."""
    out = []
    for ids in id_lists:
        if ids:
            out.append(BlockCursor(
                BlockedPostingsList.from_ids(ids, block_size), None
            ))
        else:
            out.append(ListCursor([]))
    return out


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        sorted_ids(max_value=500, max_size=80), min_size=1, max_size=3
    ),
    st.sampled_from([4, 16, 128]),
    st.one_of(st.none(), st.integers(0, 90)),
)
def test_intersect_cursors_matches_python(id_lists, block_size, limit):
    # first_k truncation: limits spanning 0, mid-block, exactly a
    # block boundary (multiples of block_size land there) and past
    # the end all appear in the sampled range.
    numpy_result = NumpyKernel().intersect_cursors(
        _cursors(id_lists, block_size), limit
    )
    python_result = PY.intersect_cursors(
        _cursors(id_lists, block_size), limit
    )
    assert numpy_result == python_result


@settings(max_examples=100, deadline=None)
@given(
    st.lists(edge_ids(), min_size=1, max_size=3),
    st.one_of(st.none(), st.integers(0, 10)),
)
def test_intersect_cursors_edge_ids_match_python(id_lists, limit):
    assert NumpyKernel().intersect_cursors(_cursors(id_lists, 4), limit) \
        == PY.intersect_cursors(_cursors(id_lists, 4), limit)


@settings(max_examples=100, deadline=None)
@given(st.lists(sorted_ids(), max_size=3))
def test_union_ordering_and_uniqueness(lists):
    result = NumpyKernel().union_many(lists)
    assert result == sorted(set(result))
