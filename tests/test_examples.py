"""Smoke tests: the example scripts must run clean end to end.

Only the two fastest examples run in the suite (the others exercise the
same API surface at larger scales and are covered by the benchmarks).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "identical matches" in out
        assert "speedup" in out

    def test_middle_name_miner(self):
        out = run_example("middle_name_miner.py")
        assert "Thomas Alva Edison" in out
        assert "william jefferson clinton" in out

    def test_all_examples_exist_and_have_docstrings(self):
        expected = {
            "quickstart.py",
            "middle_name_miner.py",
            "mp3_hunter.py",
            "index_tradeoff_explorer.py",
            "live_index.py",
        }
        present = {
            name for name in os.listdir(EXAMPLES_DIR)
            if name.endswith(".py")
        }
        assert expected <= present
        for name in expected:
            with open(os.path.join(EXAMPLES_DIR, name)) as f:
                source = f.read()
            assert source.lstrip().startswith(
                ("#!/usr/bin/env python\n\"\"\"", '"""')
            ), name
