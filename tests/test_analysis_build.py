"""Build-report analyzer tests: BLD001..BLD005 fire on doctored
reports and stay silent when the report matches its index."""

import pytest

from repro.analysis.build_checks import check_build_report
from repro.analysis.runner import run_check
from repro.corpus.document import DataUnit
from repro.corpus.store import InMemoryCorpus
from repro.index.builder import build_multigram_index
from repro.index.serialize import save_index
from repro.obs.buildreport import BuildReport, default_report_path


def codes(findings):
    return sorted(f.code for f in findings)


@pytest.fixture(scope="module")
def built():
    corpus = InMemoryCorpus([
        DataUnit(i, f"some page body number {i} with shared words")
        for i in range(12)
    ])
    index = build_multigram_index(corpus, threshold=0.3, max_gram_len=5)
    return index, index.stats.build_report


class TestCleanReport:
    def test_matching_report_is_silent(self, built):
        index, report = built
        assert check_build_report(report, index) == []

    def test_accepts_a_json_path(self, built, tmp_path):
        index, report = built
        path = str(tmp_path / "r.build.json")
        report.save(path)
        assert check_build_report(path, index) == []


class TestDoctoredReports:
    def _clone(self, report):
        return BuildReport.from_dict(report.as_dict())

    def test_bld001_kind_and_key_mismatch(self, built):
        index, report = built
        bad = self._clone(report)
        bad.kind = "presuf"
        bad.n_keys += 3
        assert codes(check_build_report(bad, index)) == [
            "BLD001", "BLD001",
        ]

    def test_bld002_postings_mismatch(self, built):
        index, report = built
        bad = self._clone(report)
        bad.n_postings += 1
        bad.postings_bytes += 1
        assert codes(check_build_report(bad, index)) == [
            "BLD002", "BLD002",
        ]

    def test_bld003_obs38_violation(self, built):
        index, report = built
        bad = self._clone(report)
        bad.corpus_chars = bad.n_postings - 1
        findings = check_build_report(bad, index)
        assert "BLD003" in codes(findings)
        obs = [f for f in findings if f.code == "BLD003"][0]
        assert obs.paper_ref == "Obs 3.8"

    def test_bld004_corpus_size_is_warning(self, built):
        index, report = built
        bad = self._clone(report)
        bad.corpus_chars += 100
        findings = check_build_report(bad, index)
        assert codes(findings) == ["BLD004"]
        assert findings[0].severity.label() == "warning"

    def test_bld005_level_arithmetic(self, built):
        index, report = built
        bad = self._clone(report)
        bad.levels[0].candidates += 1
        bad.levels[0].hash_classified = bad.levels[0].useful + 1
        assert codes(check_build_report(bad, index)) == [
            "BLD005", "BLD005",
        ]


class TestRunnerIntegration:
    def test_auto_discovery_next_to_image(self, built, tmp_path):
        index, report = built
        image = str(tmp_path / "idx.img")
        save_index(index, image)
        report.save(default_report_path(image))
        result = run_check(index=image)
        assert "build report" in result.sections
        assert result.ok

    def test_no_sidecar_skips_section(self, built, tmp_path):
        index, _report = built
        image = str(tmp_path / "bare.img")
        save_index(index, image)
        result = run_check(index=image)
        assert "build report" not in result.sections
        assert result.ok
