"""Segmented index tests: build, add, delete, merge, query equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import InMemoryCorpus, Matcher, ScanEngine, build_multigram_index
from repro.corpus.document import DataUnit
from repro.errors import IndexBuildError
from repro.index.builder import MultigramIndexBuilder
from repro.index.segmented import (
    Segment,
    SegmentedFreeEngine,
    SegmentedGramIndex,
)
from repro.plan.logical import LogicalPlan


def corpus_of(*texts):
    return InMemoryCorpus.from_texts(texts)


BUILDER = MultigramIndexBuilder(threshold=0.3, max_gram_len=5)


def seg_index_over(corpus, segment_docs=3):
    return SegmentedGramIndex.build(
        corpus, segment_docs=segment_docs, builder=BUILDER
    )


BASE_TEXTS = [
    "the cat sat on the mat",
    "william jefferson clinton",
    "motorola mpc750 chip",
    "nothing to see here",
    "the cat ran fast",
    "buy this mp3 song now",
    "another page of words",
    "clinton spoke again",
]


class TestBuild:
    def test_segment_count(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus, segment_docs=3)
        assert len(seg.segments) == 3  # 3 + 3 + 2
        assert seg.n_docs == len(corpus)

    def test_segment_size_validation(self):
        with pytest.raises(IndexBuildError):
            SegmentedGramIndex.build(corpus_of("a"), segment_docs=0)

    def test_mismatched_segment_rejected(self):
        index = build_multigram_index(corpus_of("ab", "cd"))
        with pytest.raises(IndexBuildError):
            Segment([0], index)  # 1 global id, 2-doc index

    def test_duplicate_doc_id_rejected(self):
        corpus = corpus_of("aa", "bb")
        seg = seg_index_over(corpus)
        with pytest.raises(IndexBuildError):
            seg.add_documents([DataUnit(0, "dup")])

    def test_empty_add_rejected(self):
        seg = SegmentedGramIndex(BUILDER)
        with pytest.raises(IndexBuildError):
            seg.add_documents([])


class TestQueryEquivalence:
    QUERIES = ["cat", "clinton", "mpc[0-9]+", "zzz", "(cat|mp3)",
               "th. cat"]

    @pytest.mark.parametrize("pattern", QUERIES)
    @pytest.mark.parametrize("segment_docs", [1, 3, 100])
    def test_matches_scan(self, pattern, segment_docs):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus, segment_docs=segment_docs)
        engine = SegmentedFreeEngine(corpus, seg)
        scan = ScanEngine(corpus)
        a = engine.search(pattern)
        b = scan.search(pattern)
        assert [(m.doc_id, m.span) for m in a.matches] == \
            [(m.doc_id, m.span) for m in b.matches]

    def test_per_segment_availability_differs(self):
        """A gram useful in one segment and useless in another must
        still be handled soundly (the reason plans compile per
        segment)."""
        # segment 1: 'xy' rare (sel 0.25 <= c); segment 2: universal
        texts = ["xy here", "aaa", "bbb", "ccc"] + ["xy common"] * 4
        corpus = corpus_of(*texts)
        seg = seg_index_over(corpus, segment_docs=4)
        logical = LogicalPlan.from_pattern("xy")
        candidates = seg.candidates(logical)
        assert candidates is not None  # segment 1 can filter
        truth = {u.doc_id for u in corpus if "xy" in u.text}
        assert truth <= set(candidates)
        # segment 1's filtering really applied: docs 1-3 excluded
        assert {1, 2, 3}.isdisjoint(candidates)


class TestIncremental:
    def test_add_documents_searchable(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus)
        engine = SegmentedFreeEngine(corpus, seg)
        before = engine.count("powerpc")
        assert before == 0
        unit = corpus.append_text("new powerpc page arrives")
        seg.add_documents([unit])
        assert engine.count("powerpc") == 1

    def test_delete_hides_matches(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus)
        engine = SegmentedFreeEngine(corpus, seg)
        assert engine.count("clinton") == 2
        assert seg.delete(1)
        assert engine.count("clinton") == 1
        assert seg.n_deleted == 1

    def test_delete_unknown_or_double(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus)
        assert not seg.delete(999)
        assert seg.delete(0)
        assert not seg.delete(0)

    def test_delete_affects_null_plan_queries_too(self):
        """Tombstones must apply even when the plan is a full scan."""
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus)
        engine = SegmentedFreeEngine(corpus, seg)
        # 'the' is common -> NULL plan in most segments
        before = engine.count("the")
        assert seg.delete(0)  # "the cat sat on the mat" has 2 'the'
        after = engine.count("the")
        assert after == before - 2

    def test_interleaved_adds_and_deletes(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus)
        engine = SegmentedFreeEngine(corpus, seg)
        unit1 = corpus.append_text("cat number nine")
        seg.add_documents([unit1])
        seg.delete(0)
        seg.delete(4)
        unit2 = corpus.append_text("last cat standing")
        seg.add_documents([unit2])
        # remaining 'cat' docs: unit1, unit2
        assert engine.count("cat") == 2


class TestMerge:
    def test_merge_reduces_segments(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus, segment_docs=1)
        assert len(seg.segments) == 8
        merges = seg.merge_segments(3, corpus)
        assert len(seg.segments) <= 3
        assert merges >= 5

    def test_merge_purges_tombstones(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus, segment_docs=2)
        seg.delete(1)
        seg.merge_segments(1, corpus)
        assert seg.n_deleted == 0
        assert seg.n_live == len(BASE_TEXTS) - 1

    def test_merge_preserves_answers(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus, segment_docs=1)
        engine = SegmentedFreeEngine(corpus, seg)
        seg.delete(3)
        before = {
            q: engine.count(q) for q in ("cat", "clinton", "mp3")
        }
        seg.merge_segments(2, corpus)
        after = {
            q: engine.count(q) for q in ("cat", "clinton", "mp3")
        }
        assert before == after

    def test_merge_validation(self):
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus)
        with pytest.raises(IndexBuildError):
            seg.merge_segments(0, corpus)

    def test_merge_to_one_equals_monolithic_build(self):
        """Fully merged, the segmented index IS the paper's index."""
        corpus = corpus_of(*BASE_TEXTS)
        seg = seg_index_over(corpus, segment_docs=2)
        seg.merge_segments(1, corpus)
        (only,) = seg.segments
        monolithic = BUILDER.build(corpus)
        assert set(only.index.keys()) == set(monolithic.keys())
        for key in monolithic.keys():
            local_ids = only.index.lookup(key).ids()
            global_ids = [only.global_ids[i] for i in local_ids]
            assert global_ids == monolithic.lookup(key).ids()


@settings(max_examples=50, deadline=None)
@given(
    texts=st.lists(
        st.text(alphabet="ab<", min_size=0, max_size=15),
        min_size=1, max_size=10,
    ),
    segment_docs=st.sampled_from([1, 2, 4]),
    pattern=st.sampled_from(["a+b", "(a|b)<", "ab", "<a?b"]),
    delete_first=st.booleans(),
)
def test_segmented_soundness_property(
    texts, segment_docs, pattern, delete_first
):
    corpus = InMemoryCorpus.from_texts(texts)
    seg = SegmentedGramIndex.build(
        corpus, segment_docs=segment_docs,
        builder=MultigramIndexBuilder(threshold=0.5, max_gram_len=3),
    )
    if delete_first:
        seg.delete(0)
    engine = SegmentedFreeEngine(corpus, seg)
    matcher = Matcher(pattern)
    expected = sum(
        matcher.count(u.text)
        for u in corpus
        if not (delete_first and u.doc_id == 0)
    )
    assert engine.count(pattern) == expected
