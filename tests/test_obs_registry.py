"""Metrics registry tests: families, snapshots, exposition, parsing."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsError,
    MetricsRegistry,
    get_registry,
    parse_prometheus_text,
)


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help")
        family.unlabeled().inc()
        family.unlabeled().inc(2.5)
        assert family.unlabeled().value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        child = registry.counter("c_total", "help").unlabeled()
        with pytest.raises(MetricsError):
            child.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help").unlabeled()
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value == pytest.approx(7.0)

    def test_labels_isolate_children(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", ["engine"])
        family.labels(engine="free").inc(2)
        family.labels(engine="scan").inc(5)
        assert family.labels(engine="free").value == pytest.approx(2)
        assert family.labels(engine="scan").value == pytest.approx(5)

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", ["engine"])
        with pytest.raises(MetricsError):
            family.labels(nope="x")
        with pytest.raises(MetricsError):
            family.unlabeled()

    def test_redefinition_with_different_shape_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ["engine"])
        with pytest.raises(MetricsError):
            registry.gauge("c_total", "help", ["engine"])
        with pytest.raises(MetricsError):
            registry.counter("c_total", "help", ["other"])


class TestHistogram:
    def test_buckets_and_count(self):
        registry = MetricsRegistry()
        histo = registry.histogram(
            "h", "help", buckets=(0.1, 1.0, 10.0)
        ).unlabeled()
        for value in (0.05, 0.5, 5.0, 50.0):
            histo.observe(value)
        assert histo.count == 4
        assert histo.sum == pytest.approx(55.55)
        cumulative = dict(histo.cumulative())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 2
        assert cumulative[10.0] == 3
        assert cumulative[math.inf] == 4

    def test_quantile_bucket_resolution(self):
        registry = MetricsRegistry()
        histo = registry.histogram(
            "h", "help", buckets=(1.0, 2.0, 4.0)
        ).unlabeled()
        for value in (0.5, 0.5, 1.5, 3.0):
            histo.observe(value)
        assert histo.quantile(0.5) == pytest.approx(1.0)
        assert histo.quantile(1.0) == pytest.approx(4.0)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("h", "help", buckets=(2.0, 1.0))

    def test_default_latency_buckets_cover_realistic_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0


class TestSnapshotDeltaReset:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").unlabeled().inc(3)
        registry.histogram(
            "h", "help", buckets=(1.0,)
        ).unlabeled().observe(0.5)
        return registry

    def test_snapshot_is_a_plain_copy(self):
        registry = self._registry()
        snap = registry.snapshot()
        registry.counter("c_total", "help").unlabeled().inc(10)
        assert snap["c_total"]["samples"][""] == pytest.approx(3.0)

    def test_delta_subtracts_counters_and_histograms(self):
        registry = self._registry()
        snap = registry.snapshot()
        registry.counter("c_total", "help").unlabeled().inc(5)
        registry.histogram(
            "h", "help", buckets=(1.0,)
        ).unlabeled().observe(0.25)
        window = registry.delta(snap)
        assert window["c_total"]["samples"][""] == pytest.approx(5.0)
        histo = window["h"]["samples"][""]
        assert histo["count"] == 1
        assert histo["sum"] == pytest.approx(0.25)

    def test_gauges_stay_absolute_in_delta(self):
        registry = MetricsRegistry()
        registry.gauge("g", "help").unlabeled().set(10)
        snap = registry.snapshot()
        registry.gauge("g", "help").unlabeled().set(4)
        window = registry.delta(snap)
        assert window["g"]["samples"][""] == pytest.approx(4.0)

    def test_reset_zeroes_but_keeps_definitions(self):
        registry = self._registry()
        registry.reset()
        assert registry.snapshot()["c_total"]["samples"] == {}
        # Re-registering with the same shape still works after reset.
        registry.counter("c_total", "help").unlabeled().inc()


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        queries = registry.counter(
            "free_queries_total", "Queries.", ["engine"]
        )
        queries.labels(engine="free").inc(4)
        queries.labels(engine="scan").inc(1)
        registry.histogram(
            "free_query_seconds", "Latency.", ["engine"],
            buckets=(0.01, 0.1),
        ).labels(engine="free").observe(0.05)
        return registry

    def test_round_trip_through_strict_parser(self):
        text = self._populated().render_prometheus()
        samples = parse_prometheus_text(text)
        assert samples["free_queries_total"]["engine=free"] == 4.0
        buckets = samples["free_query_seconds_bucket"]
        assert buckets["engine=free,le=+Inf"] == 1.0

    def test_histogram_sum_count_lines_present(self):
        text = self._populated().render_prometheus()
        assert "free_query_seconds_sum{engine=\"free\"}" in text
        assert "free_query_seconds_count{engine=\"free\"} 1" in text

    def test_label_escaping_survives_parsing(self):
        registry = MetricsRegistry()
        registry.counter(
            "c_total", "help", ["pattern"]
        ).labels(pattern='a"b\\c').inc()
        samples = parse_prometheus_text(registry.render_prometheus())
        assert sum(samples["c_total"].values()) == 1.0

    def test_parser_rejects_malformed_sample(self):
        with pytest.raises(MetricsError):
            parse_prometheus_text("not a metric line at all {\n")

    def test_parser_rejects_nonmonotone_histogram(self):
        bad = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="1.0"} 5',
            'h_bucket{le="2.0"} 3',
            'h_bucket{le="+Inf"} 5',
            "h_count 5",
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(bad)

    def test_parser_rejects_missing_inf_bucket(self):
        bad = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="1.0"} 5',
            "h_count 5",
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(bad)

    def test_parser_rejects_count_mismatch(self):
        bad = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="+Inf"} 5',
            "h_count 4",
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(bad)


class TestExemplars:
    def _histo(self, buckets=(0.1, 1.0)):
        registry = MetricsRegistry()
        return registry, registry.histogram(
            "h_seconds", "Latency.", buckets=buckets
        ).unlabeled()

    def test_observe_stores_last_exemplar_per_bucket(self):
        _registry, histo = self._histo()
        histo.observe(0.05, exemplar={"trace_id": "a" * 32})
        histo.observe(0.07, exemplar={"trace_id": "b" * 32})
        histo.observe(0.5, exemplar={"trace_id": "c" * 32})
        histo.observe(0.06)  # no exemplar: previous one sticks
        labels, value = histo.bucket_exemplar(0)
        assert dict(labels) == {"trace_id": "b" * 32}
        assert value == pytest.approx(0.07)
        labels, _value = histo.bucket_exemplar(1)
        assert dict(labels) == {"trace_id": "c" * 32}
        assert histo.bucket_exemplar(2) is None  # +Inf untouched

    def test_overflow_exemplar_lands_on_inf_bucket(self):
        _registry, histo = self._histo()
        histo.observe(50.0, exemplar={"trace_id": "d" * 32})
        assert histo.bucket_exemplar(0) is None
        assert histo.bucket_exemplar(1) is None
        labels, value = histo.bucket_exemplar(2)
        assert dict(labels) == {"trace_id": "d" * 32}
        assert value == pytest.approx(50.0)

    def test_invalid_exemplar_label_name_rejected(self):
        _registry, histo = self._histo()
        with pytest.raises(MetricsError):
            histo.observe(0.05, exemplar={"trace id": "x"})

    def test_exposition_renders_openmetrics_suffix(self):
        registry, histo = self._histo()
        histo.observe(0.05, exemplar={"trace_id": "ab" * 16})
        text = registry.render_prometheus()
        line = next(
            l for l in text.splitlines()
            if l.startswith('h_seconds_bucket{le="0.1"}')
        )
        assert line.endswith(f'# {{trace_id="{"ab" * 16}"}} 0.05')
        # buckets without exemplars render without the suffix
        inf_line = next(
            l for l in text.splitlines()
            if l.startswith('h_seconds_bucket{le="+Inf"}')
        )
        assert "#" not in inf_line

    def test_strict_parser_accepts_exemplar_lines(self):
        registry, histo = self._histo()
        histo.observe(0.05, exemplar={"trace_id": "ab" * 16})
        histo.observe(5.0, exemplar={"trace_id": "cd" * 16})
        samples = parse_prometheus_text(registry.render_prometheus())
        buckets = samples["h_seconds_bucket"]
        assert buckets["le=+Inf"] == 2.0

    def test_parser_rejects_exemplar_on_non_bucket_line(self):
        bad = "\n".join([
            "# TYPE c_total counter",
            'c_total 5 # {trace_id="ab"} 1.0',
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(bad)

    def test_parser_rejects_exemplar_value_above_le(self):
        bad = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="1.0"} 1 # {trace_id="ab"} 2.5',
            'h_bucket{le="+Inf"} 1',
            "h_count 1",
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(bad)

    def test_parser_rejects_empty_or_bad_exemplar(self):
        empty = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="+Inf"} 1 # {} 0.5',
            "h_count 1",
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(empty)
        bad_value = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="+Inf"} 1 # {trace_id="ab"} notafloat',
            "h_count 1",
        ])
        with pytest.raises(MetricsError):
            parse_prometheus_text(bad_value)

    def test_exemplars_do_not_disturb_snapshot_delta(self):
        registry, histo = self._histo()
        histo.observe(0.05, exemplar={"trace_id": "ab" * 16})
        snap = registry.snapshot()
        histo.observe(0.06, exemplar={"trace_id": "cd" * 16})
        window = registry.delta(snap)
        assert window["h_seconds"]["samples"][""]["count"] == 1


class TestGlobalRegistry:
    def test_get_registry_is_stable(self):
        assert get_registry() is get_registry()
