"""CONC002 fixed: asyncio.Lock awaited instead of held."""

import asyncio


class Cache:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._entries = {}

    async def get(self, key, loader):
        async with self._lock:
            value = await loader(key)
            self._entries[key] = value
        return value

    async def acquire_direct(self):
        await self._lock.acquire()
