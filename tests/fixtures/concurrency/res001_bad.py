"""RES001: reconstruction of the pre-analyzer unmanaged CLI engine.

The ``search`` command built a ``FreeEngine``, ran the query, and on
the truncation early-return path never closed it — the mmap'd index
and corpus handle leaked until interpreter exit."""

from repro.engine.free import FreeEngine


def run_search(corpus, index, pattern, limit):
    engine = FreeEngine(corpus, index)
    matches = engine.search(pattern)
    if limit is not None and len(matches) > limit:
        return matches[:limit]
    engine.close()
    return matches
