"""RES003 fixed: weak registry entry, finalize before sharing."""

import weakref
from concurrent.futures import ProcessPoolExecutor

_FORK_SHARED = {}


class PoolHost:
    def ensure_pool(self, token):
        _FORK_SHARED[token] = weakref.ref(self)
        weakref.finalize(self, _FORK_SHARED.pop, token, None)
        return ProcessPoolExecutor(max_workers=2)
