"""CONC004 fixed: both contexts take the lock around the write."""

import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self._worker = None

    def start_worker(self):
        self._worker = threading.Thread(
            target=self._drain, daemon=True
        )
        self._worker.start()

    def _drain(self):
        with self._lock:
            self.total = self.total + 1

    async def observe(self, n):
        with self._lock:
            self.total = self.total + n
