"""RES003: reconstruction of the pre-analyzer ``_FORK_SHARED`` leak.

The fork-pool host registered a *strong* ``self`` reference in a
module registry (pinning every engine alive forever) and registered
its ``weakref.finalize`` only after the fork pool existed — a crash
in between leaked the registration window."""

import weakref
from concurrent.futures import ProcessPoolExecutor

_FORK_SHARED = {}


class PoolHost:
    def ensure_pool(self, token):
        _FORK_SHARED[token] = self
        pool = ProcessPoolExecutor(max_workers=2)
        weakref.finalize(self, _FORK_SHARED.pop, token, None)
        return pool
