"""CONC004: the same attribute written unlocked from a worker
thread and from the event loop."""

import threading


class Stats:
    def __init__(self):
        self.total = 0
        self._worker = None

    def start_worker(self):
        self._worker = threading.Thread(
            target=self._drain, daemon=True
        )
        self._worker.start()

    def _drain(self):
        self.total = self.total + 1

    async def observe(self, n):
        self.total = self.total + n
