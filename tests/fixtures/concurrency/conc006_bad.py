"""CONC006: a broad except-and-drop on a close path hides leaked
resources behind a clean-looking shutdown."""


class Pipe:
    def __init__(self, conn):
        self.conn = conn

    def close(self):
        try:
            self.conn.flush()
        except Exception:
            pass
        self.conn.close()
