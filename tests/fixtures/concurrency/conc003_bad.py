"""CONC003: fork-based pool created on a path after a thread start
snapshots whatever locks those threads hold."""

import threading
from concurrent.futures import ProcessPoolExecutor


def serve(run_server, warm):
    server_thread = threading.Thread(target=run_server, daemon=True)
    server_thread.start()
    pool = ProcessPoolExecutor(max_workers=2)
    warm(pool)
    return pool
