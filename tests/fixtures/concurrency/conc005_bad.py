"""CONC005: a caller-controlled string flows into a metric label,
so the label set (and the registry) grows without bound."""


class Metrics:
    def __init__(self, counter):
        self.counter = counter

    def observe(self, endpoint):
        self.counter.labels(endpoint=endpoint).inc()
