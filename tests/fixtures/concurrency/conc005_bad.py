"""CONC005: a caller-controlled string flows into a metric label,
so the label set (and the registry) grows without bound."""


class Metrics:
    def __init__(self, counter):
        self.counter = counter

    def observe(self, endpoint):
        self.counter.labels(endpoint=endpoint).inc()


class Latency:
    """Identity labels are banned by name: ``str(trace_id)`` passes
    the boundedness grammar but still mints one series per request."""

    def __init__(self, histogram):
        self.histogram = histogram

    def observe(self, trace_id, elapsed):
        child = self.histogram.labels(trace_id=str(trace_id))
        child.observe(elapsed)
