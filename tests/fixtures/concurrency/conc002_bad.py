"""CONC002: a synchronous lock held across an await suspends the
whole event loop with the lock still taken."""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    async def get(self, key, loader):
        with self._lock:
            value = await loader(key)
            self._entries[key] = value
        return value

    async def acquire_direct(self):
        self._lock.acquire()
