"""RES004: __del__ relied on to release the mapped view; GC
finalization order is unspecified and __del__ may never run."""


class MappedImage:
    def __init__(self, view):
        self.view = view

    def __del__(self):
        self.view.close()
