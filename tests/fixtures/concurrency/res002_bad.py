"""RES002: every path into the second close() already closed the
handle in the finally block."""


def copy_rows(path, sink):
    handle = open(path, "rb")
    try:
        sink.write(handle.read())
    finally:
        handle.close()
    handle.close()
