"""CONC001 fixed: block in an executor, sleep asynchronously."""

import asyncio


class Handler:
    def _lookup(self, engine, pattern):
        return engine.search(pattern)

    async def handle(self, loop, engine, pattern):
        await asyncio.sleep(0.05)
        return await loop.run_in_executor(
            None, self._lookup, engine, pattern
        )
