"""RES002 fixed: close exactly once, in the finally block."""


def copy_rows(path, sink):
    handle = open(path, "rb")
    try:
        sink.write(handle.read())
    finally:
        handle.close()
