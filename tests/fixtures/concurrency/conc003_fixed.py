"""CONC003 fixed: prewarm the fork pool, then start threads."""

import threading
from concurrent.futures import ProcessPoolExecutor


def serve(run_server, warm):
    pool = ProcessPoolExecutor(max_workers=2)
    warm(pool)
    server_thread = threading.Thread(target=run_server, daemon=True)
    server_thread.start()
    return pool
