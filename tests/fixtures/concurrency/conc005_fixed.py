"""CONC005 fixed: clamp the label to a literal vocabulary first."""

_ENDPOINTS = frozenset({"/search", "/metrics"})


class Metrics:
    def __init__(self, counter):
        self.counter = counter

    def observe(self, endpoint):
        label = endpoint if endpoint in _ENDPOINTS else "other"
        self.counter.labels(endpoint=label).inc()
