"""CONC005 fixed: clamp the label to a literal vocabulary first;
route identities through histogram exemplars, never labels."""

_ENDPOINTS = frozenset({"/search", "/metrics"})


class Metrics:
    def __init__(self, counter):
        self.counter = counter

    def observe(self, endpoint):
        label = endpoint if endpoint in _ENDPOINTS else "other"
        self.counter.labels(endpoint=label).inc()


class Latency:
    """The trace id rides as an exemplar: one value pinned per bucket,
    bounded memory, no new time series."""

    def __init__(self, histogram):
        self.histogram = histogram

    def observe(self, trace_id, endpoint, elapsed):
        label = endpoint if endpoint in _ENDPOINTS else "other"
        child = self.histogram.labels(endpoint=label)
        child.observe(elapsed, exemplar={"trace_id": trace_id})
