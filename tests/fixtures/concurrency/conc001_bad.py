"""CONC001: blocking calls reachable on the asyncio event loop."""

import time


class Handler:
    def _lookup(self, engine, pattern):
        # Reached transitively from the async handler below.
        return engine.search(pattern)

    async def handle(self, engine, pattern):
        time.sleep(0.05)
        return self._lookup(engine, pattern)
