"""RES004 fixed: explicit close() with weakref.finalize as the
safety net instead of __del__."""

import weakref


class MappedImage:
    def __init__(self, view):
        self.view = view
        self._finalizer = weakref.finalize(self, view.close)

    def close(self):
        self._finalizer()
