"""RES001 fixed: `with` manages the engine on every path."""

from repro.engine.free import FreeEngine


def run_search(corpus, index, pattern, limit):
    with FreeEngine(corpus, index) as engine:
        matches = engine.search(pattern)
        if limit is not None and len(matches) > limit:
            return matches[:limit]
    return matches
