"""CONC006 fixed: catch the narrow error the flush can raise."""


class Pipe:
    def __init__(self, conn):
        self.conn = conn

    def close(self):
        try:
            self.conn.flush()
        except OSError:
            pass
        self.conn.close()
