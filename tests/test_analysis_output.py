"""Strict schema tests for the machine-readable analyzer output:
``free check --format json`` and ``--format sarif``."""

import json

from repro.analysis.findings import (
    SARIF_SCHEMA_URI,
    AnalysisReport,
    Severity,
    make_finding,
)
from repro.analysis.runner import collect_rules
from repro.cli import main


def seeded_report():
    report = AnalysisReport()
    report.begin_section("concurrency & lifecycle")
    report.add(make_finding(
        "RES001",
        "engine leaks on the early-return path",
        severity=Severity.ERROR,
        subject="src/repro/example.py",
        location="12:4",
    ))
    report.add(make_finding(
        "CONC005",
        "label takes an unbounded value",
        severity=Severity.WARNING,
        subject="src/repro/example.py",
        location="30:8",
    ))
    report.add(make_finding(
        "IDX009",
        "postings within the Obs 3.8 bound",
        severity=Severity.INFO,
        subject="gram-index",
        location="key=abc",
    ))
    report.justifications["src/repro/example.py"] = [
        "RES001: resource escapes  [open@12 ->* exit]",
    ]
    return report


class TestJsonSchema:
    def test_as_dict_shape(self):
        payload = seeded_report().as_dict()
        assert set(payload) == {
            "sections", "findings", "justifications", "ok",
        }
        assert payload["ok"] is False
        assert payload["sections"] == ["concurrency & lifecycle"]
        for finding in payload["findings"]:
            assert set(finding) == {
                "code", "severity", "message", "paper_ref",
                "subject", "location",
            }
            assert finding["severity"] in ("error", "warning", "info")
        assert payload["justifications"] == {
            "src/repro/example.py": [
                "RES001: resource escapes  [open@12 ->* exit]",
            ],
        }

    def test_round_trips_through_json(self):
        payload = seeded_report().as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestSarifSchema:
    def test_top_level_envelope(self):
        sarif = seeded_report().as_sarif(collect_rules())
        assert sarif["$schema"] == SARIF_SCHEMA_URI
        assert sarif["version"] == "2.1.0"
        assert len(sarif["runs"]) == 1

    def test_tool_driver_and_rules(self):
        sarif = seeded_report().as_sarif(collect_rules())
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "free-check"
        rules = {rule["id"]: rule for rule in driver["rules"]}
        # Only referenced rules appear, each with a description.
        assert set(rules) == {"RES001", "CONC005", "IDX009"}
        assert (
            rules["RES001"]["shortDescription"]["text"]
            == collect_rules()["RES001"]
        )

    def test_results_levels_and_locations(self):
        sarif = seeded_report().as_sarif(collect_rules())
        results = sarif["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        assert by_rule["RES001"]["level"] == "error"
        assert by_rule["CONC005"]["level"] == "warning"
        assert by_rule["IDX009"]["level"] == "note"
        location = by_rule["RES001"]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/example.py"
        )
        # ast columns are 0-based, SARIF's are 1-based.
        assert location["region"] == {"startLine": 12,
                                      "startColumn": 5}

    def test_non_positional_location_has_no_region(self):
        sarif = seeded_report().as_sarif(collect_rules())
        results = sarif["runs"][0]["results"]
        idx = next(r for r in results if r["ruleId"] == "IDX009")
        location = idx["locations"][0]["physicalLocation"]
        assert "region" not in location

    def test_message_is_the_rendered_finding(self):
        sarif = seeded_report().as_sarif(collect_rules())
        result = sarif["runs"][0]["results"][0]
        text = result["message"]["text"]
        assert text.startswith("error RES001")


class TestCollectRules:
    def test_merges_all_three_registries(self):
        rules = collect_rules()
        assert {"FREE001", "CONC001", "RES001"} <= set(rules)
        assert all(
            isinstance(code, str) and isinstance(text, str)
            for code, text in rules.items()
        )

    def test_codes_are_unique_across_families(self):
        rules = collect_rules()
        free = [c for c in rules if c.startswith("FREE")]
        conc = [c for c in rules if c.startswith("CONC")]
        res = [c for c in rules if c.startswith("RES")]
        assert len(free) == 6 and len(conc) == 6 and len(res) == 4


class TestCliFormats:
    def test_json_flag_is_format_alias(self, capsys):
        assert main(["check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "concurrency & lifecycle" in payload["sections"]

    def test_sarif_is_valid_json_with_envelope(self, capsys):
        assert main(["check", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["$schema"] == SARIF_SCHEMA_URI
        assert payload["runs"][0]["tool"]["driver"]["name"] == (
            "free-check"
        )

    def test_text_is_the_default(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "check: OK" in out
