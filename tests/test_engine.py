"""End-to-end engine tests: FREE vs Scan equivalence, first-k, ranking."""

import pytest

from repro import (
    DiskModel,
    FreeEngine,
    InMemoryCorpus,
    ScanEngine,
    build_multigram_index,
)
from repro.bench.queries import BENCHMARK_QUERIES, NULL_PLAN_QUERIES


def make_corpus():
    return InMemoryCorpus.from_texts([
        "the cat sat on the mat",
        "william jefferson clinton was president",
        "motorola mpc750 is a powerpc chip",
        '<a href="song.mp3">mp3 here</a>',
        "nothing interesting here at all",
        "william x clinton and william jefferson clinton",
        "the dog ran after the cat",
        '<script>var a=1;</script> call (408) 555-0199',
    ])


@pytest.fixture(scope="module")
def tiny():
    corpus = make_corpus()
    index = build_multigram_index(corpus, threshold=0.3, max_gram_len=8)
    return corpus, index


class TestEquivalence:
    """The core contract: index-assisted results == scan results."""

    QUERIES = [
        "cat",
        "william\\s+[a-z]+\\s+clinton",
        "motorola.*(xpc|mpc)[0-9]+",
        '<a href="[^"]*\\.mp3">',
        "(cat|dog)",
        "zzz_not_present",
        "\\(\\d\\d\\d\\) \\d\\d\\d-\\d\\d\\d\\d",
        "<script>.*</script>",
    ]

    @pytest.mark.parametrize("pattern", QUERIES)
    def test_same_matches(self, tiny, pattern):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        scan = ScanEngine(corpus)
        r_free = free.search(pattern)
        r_scan = scan.search(pattern)
        assert sorted((m.doc_id, m.start, m.end) for m in r_free.matches) \
            == sorted((m.doc_id, m.start, m.end) for m in r_scan.matches)

    @pytest.mark.parametrize("pattern", QUERIES)
    def test_candidates_superset_of_matching_units(self, tiny, pattern):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        report = free.search(pattern)
        matched_units = {m.doc_id for m in report.matches}
        assert len(matched_units) == report.matching_units
        assert report.n_candidates >= report.matching_units

    def test_fixture_equivalence_on_benchmarks(
        self, corpus, multigram_index
    ):
        free = FreeEngine(corpus, multigram_index)
        scan = ScanEngine(corpus)
        for name, pattern in BENCHMARK_QUERIES.items():
            free_count = free.search(pattern, collect_matches=False)
            scan_count = scan.search(pattern, collect_matches=False)
            assert free_count.n_matches == scan_count.n_matches, name

    def test_complete_index_equivalence(self, corpus, complete_index):
        free = FreeEngine(corpus, complete_index)
        scan = ScanEngine(corpus)
        for name in ("clinton", "powerpc", "stanford"):
            pattern = BENCHMARK_QUERIES[name]
            assert (
                free.search(pattern, collect_matches=False).n_matches
                == scan.search(pattern, collect_matches=False).n_matches
            ), name

    def test_presuf_index_equivalence(self, corpus, presuf_index):
        free = FreeEngine(corpus, presuf_index)
        scan = ScanEngine(corpus)
        for name in ("clinton", "sigmod", "mp3"):
            pattern = BENCHMARK_QUERIES[name]
            assert (
                free.search(pattern, collect_matches=False).n_matches
                == scan.search(pattern, collect_matches=False).n_matches
            ), name


class TestPlansInEngine:
    def test_null_queries_fall_back_to_scan(self):
        # A corpus where every character of the phone query is common,
        # so no gram is useful and the plan collapses to NULL.
        corpus = InMemoryCorpus.from_texts(
            [f"(0123456789-) call {i}" for i in range(4)]
        )
        index = build_multigram_index(corpus, threshold=0.3, max_gram_len=8)
        free = FreeEngine(corpus, index)
        report = free.search(r"\(\d\d\d\) \d\d\d-\d\d\d\d")
        assert report.used_full_scan
        assert report.n_candidates == len(corpus)

    def test_indexed_query_reads_fewer_units(self, tiny):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        report = free.search("motorola.*(xpc|mpc)[0-9]+")
        assert not report.used_full_scan
        assert report.n_units_read < len(corpus)

    def test_explain_smoke(self, tiny):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        text = free.explain("motorola")
        assert "LogicalPlan" in text and "PhysicalPlan" in text

    def test_scan_engine_has_no_physical_plan(self, tiny):
        corpus, _index = tiny
        scan = ScanEngine(corpus)
        logical, physical = scan.plan("abc")
        assert physical is None

    def test_min_candidate_ratio_guard(self, tiny):
        corpus, index = tiny
        # guard at 0: any candidate set "too large" -> scan
        engine = FreeEngine(corpus, index, min_candidate_ratio=0.0)
        report = engine.search("cat")
        assert report.used_full_scan

    def test_estimate(self, tiny):
        corpus, index = tiny
        engine = FreeEngine(corpus, index)
        cost = engine.estimate("motorola")
        assert cost is not None
        assert 0.0 <= cost.selectivity <= 1.0
        assert ScanEngine(corpus).estimate("motorola") is None


class TestFirstK:
    def test_limit_respected(self, tiny):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        report = free.first_k("cat", k=2)
        assert report.n_matches == 2
        assert report.truncated

    def test_no_truncation_when_few_matches(self, tiny):
        corpus, index = tiny
        report = FreeEngine(corpus, index).first_k("motorola", k=10)
        assert not report.truncated

    def test_first_k_is_prefix_of_full(self, tiny):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        full = free.search("cat").matches
        first = free.first_k("cat", k=2).matches
        assert [(m.doc_id, m.span) for m in first] == \
            [(m.doc_id, m.span) for m in full[:2]]

    def test_first_k_reads_fewer_units_on_scan(self, corpus):
        scan = ScanEngine(corpus)
        full = scan.search("<p>", collect_matches=False)
        first = scan.first_k("<p>", k=10)
        assert first.n_units_read <= full.n_units_read

    def test_zero_matches(self, tiny):
        corpus, index = tiny
        report = FreeEngine(corpus, index).first_k("zzz_never", k=10)
        assert report.n_matches == 0


class TestResultsAndRanking:
    def test_frequency_ranked(self, tiny):
        corpus, index = tiny
        free = FreeEngine(corpus, index)
        ranked = free.frequency_ranked("william [a-z]+ clinton")
        assert ranked[0][0] == "william jefferson clinton"
        assert ranked[0][1] == 2

    def test_count(self, tiny):
        corpus, index = tiny
        # "the cat sat on the mat" + "the dog ran after the cat"
        assert FreeEngine(corpus, index).count("cat") == 2

    def test_collect_matches_false_keeps_count(self, tiny):
        corpus, index = tiny
        report = FreeEngine(corpus, index).search(
            "cat", collect_matches=False
        )
        assert report.n_matches == 2
        assert report.matches == []

    def test_match_objects(self, tiny):
        corpus, index = tiny
        report = FreeEngine(corpus, index).search("mpc[0-9]+")
        (match,) = report.matches
        assert match.text == "mpc750"
        assert corpus.get(match.doc_id).text[match.start:match.end] \
            == "mpc750"

    def test_summary_string(self, tiny):
        corpus, index = tiny
        report = FreeEngine(corpus, index).search("cat")
        assert "cat" in report.summary()


class TestIOAccounting:
    def test_scan_charges_sequential(self, tiny):
        corpus, _ = tiny
        disk = DiskModel()
        scan = ScanEngine(corpus, disk=disk)
        scan.search("zzz_not_present", collect_matches=False)
        assert disk.sequential_chars == corpus.total_chars
        assert disk.random_chars == 0

    def test_index_charges_random(self, tiny):
        corpus, index = tiny
        disk = DiskModel()
        free = FreeEngine(corpus, index, disk=disk)
        report = free.search("motorola")
        assert not report.used_full_scan
        assert disk.random_accesses == report.n_units_read
        assert disk.sequential_chars == 0

    def test_io_cost_in_report(self, tiny):
        corpus, index = tiny
        free = FreeEngine(corpus, index, disk=DiskModel())
        r1 = free.search("motorola")
        r2 = free.search("motorola")
        # per-report deltas, not cumulative totals
        assert r1.io_cost == pytest.approx(r2.io_cost)

    def test_rare_query_io_far_below_scan(self, corpus, multigram_index):
        free = FreeEngine(corpus, multigram_index, disk=DiskModel())
        scan = ScanEngine(corpus, disk=DiskModel())
        pattern = BENCHMARK_QUERIES["powerpc"]
        fr = free.search(pattern, collect_matches=False)
        sr = scan.search(pattern, collect_matches=False)
        # the fixture boosts powerpc to 2% of pages, so the margin is
        # modest here; the benchmark-scale corpus shows orders of
        # magnitude (EXPERIMENTS.md)
        assert fr.io_cost * 2 < sr.io_cost


class TestReBackendEngine:
    def test_re_backend_equivalent(self, tiny):
        corpus, index = tiny
        dfa_engine = FreeEngine(corpus, index, backend="dfa")
        re_engine = FreeEngine(corpus, index, backend="re")
        for pattern in ("cat", "motorola.*(xpc|mpc)[0-9]+"):
            a = dfa_engine.search(pattern, collect_matches=False)
            b = re_engine.search(pattern, collect_matches=False)
            assert a.n_matches == b.n_matches
