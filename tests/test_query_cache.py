"""Query-path caching and per-query metrics (plan/candidate/matcher LRUs).

Covers the cache layer end to end: the LRU primitive, cache soundness
(identical answers with caching on/off, invalidation on index change,
epoch keys on mutable indexes), and the QueryMetrics counters riding on
every SearchReport.
"""

import pytest

from repro import FreeEngine, InMemoryCorpus, build_multigram_index
from repro.bench.runner import run_repeated_queries
from repro.corpus.document import DataUnit
from repro.index.builder import MultigramIndexBuilder
from repro.index.segmented import SegmentedFreeEngine, SegmentedGramIndex
from repro.metrics import LRUCache, QueryMetrics

TEXTS = [
    "the cat sat on the mat",
    "william jefferson clinton",
    "motorola mpc750 chip",
    "nothing to see here",
    "the cat ran fast",
    "buy this mp3 song now",
    "another page of words",
    "clinton spoke again",
]


@pytest.fixture()
def corpus():
    return InMemoryCorpus.from_texts(TEXTS)


@pytest.fixture()
def index(corpus):
    return build_multigram_index(corpus, threshold=0.5, max_gram_len=5)


def make_engine(corpus, index, **kwargs):
    return FreeEngine(corpus, index, **kwargs)


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("b", "dflt") == "dflt"

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_hit_rate_and_stats(self):
        cache = LRUCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["capacity"] == 4 and stats["entries"] == 1

    def test_contains_does_not_touch_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # membership probe, not a use
        cache.put("c", 3)
        assert "a" not in cache  # a was still the LRU entry

    def test_overwrite_refreshes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache


class TestPlanCache:
    def test_second_search_hits(self, corpus, index):
        engine = make_engine(corpus, index)
        first = engine.search("clinton")
        second = engine.search("clinton")
        assert first.metrics.plan_cache_hit is False
        assert second.metrics.plan_cache_hit is True
        assert first.n_matches == second.n_matches == 2
        assert engine.plan_cache.stats()["hits"] == 1

    def test_disabled_plan_cache_never_hits(self, corpus, index):
        engine = make_engine(corpus, index, plan_cache_size=0)
        engine.search("clinton")
        report = engine.search("clinton")
        assert report.metrics.plan_cache_hit is False

    def test_key_includes_cover_policy(self, corpus, index):
        engine = make_engine(corpus, index)
        engine.search("clinton")
        engine.cover_policy = type(engine.cover_policy)("best")
        report = engine.search("clinton")
        assert report.metrics.plan_cache_hit is False

    def test_cached_results_identical(self, corpus, index):
        engine = make_engine(corpus, index)
        cold = engine.search("the cat")
        warm = engine.search("the cat")
        assert [m.text for m in cold.matches] == \
            [m.text for m in warm.matches]
        assert cold.n_candidates == warm.n_candidates


class TestCandidateCache:
    def test_hit_skips_postings_io(self, corpus, index):
        engine = make_engine(corpus, index, candidate_cache_size=8)
        cold = engine.search("clinton")
        warm = engine.search("clinton")
        assert cold.metrics.candidate_cache_hit is False
        assert warm.metrics.candidate_cache_hit is True
        assert cold.io_detail["postings_read"] > 0
        assert warm.io_detail["postings_read"] == 0
        assert warm.n_matches == cold.n_matches
        assert warm.n_candidates == cold.n_candidates

    def test_disabled_by_default(self, corpus, index):
        engine = make_engine(corpus, index)
        engine.search("clinton")
        report = engine.search("clinton")
        assert report.metrics.candidate_cache_hit is None
        assert report.io_detail["postings_read"] > 0

    def test_scan_all_plans_cached_too(self, corpus, index):
        engine = make_engine(corpus, index, candidate_cache_size=8)
        cold = engine.search("zzzqqq")  # nothing indexable -> full scan
        warm = engine.search("zzzqqq")
        assert cold.used_full_scan and warm.used_full_scan
        assert warm.metrics.candidate_cache_hit is True
        assert warm.n_matches == cold.n_matches == 0

    def test_results_equal_with_and_without(self, corpus, index):
        plain = make_engine(corpus, index)
        caching = make_engine(corpus, index, candidate_cache_size=8)
        for pattern in ["clinton", "the cat", "mpc[0-9]+", "(cat|mp3)"]:
            expected = plain.search(pattern).n_matches
            assert caching.search(pattern).n_matches == expected
            assert caching.search(pattern).n_matches == expected  # warm


class TestInvalidation:
    def test_index_setter_clears_caches(self, corpus, index):
        engine = make_engine(corpus, index, candidate_cache_size=8)
        engine.search("clinton")
        assert len(engine.plan_cache) > 0
        assert len(engine.candidate_cache) > 0
        engine.index = build_multigram_index(
            corpus, threshold=0.9, max_gram_len=3
        )
        assert len(engine.plan_cache) == 0
        assert len(engine.candidate_cache) == 0

    def test_matcher_cache_survives_index_swap(self, corpus, index):
        engine = make_engine(corpus, index)
        engine.search("clinton")
        matcher = engine._matcher("clinton")
        engine.index = index
        assert engine._matcher("clinton") is matcher

    def test_new_index_actually_used(self, corpus, index):
        engine = make_engine(corpus, index, candidate_cache_size=8)
        before = engine.search("clinton")
        assert not before.used_full_scan
        engine.index = build_multigram_index(
            InMemoryCorpus.from_texts(["zz"] * 4), threshold=0.5,
            max_gram_len=3,
        )
        after = engine.search("clinton")
        # the new index has no useful keys: the plan must be recompiled
        # (full scan), not served from the old index's cache
        assert after.used_full_scan
        assert after.n_matches == before.n_matches


class TestSegmentedEpoch:
    BUILDER = MultigramIndexBuilder(threshold=0.5, max_gram_len=5)

    def engine_over(self, corpus):
        seg = SegmentedGramIndex.build(
            corpus, segment_docs=3, builder=self.BUILDER
        )
        return SegmentedFreeEngine(
            corpus, seg, candidate_cache_size=8
        ), seg

    def test_epoch_bumps_on_mutation(self, corpus):
        engine, seg = self.engine_over(corpus)
        start = seg.epoch  # build() adds segments, each bumps it
        assert start == len(seg.segments)
        seg.add_documents([DataUnit(len(corpus), "clinton once more")])
        assert seg.epoch == start + 1
        assert seg.delete(0)
        assert seg.epoch == start + 2
        assert not seg.delete(999)  # no-op delete: epoch unchanged
        assert seg.epoch == start + 2

    def test_no_stale_candidates_after_add(self, corpus):
        texts = list(TEXTS)
        engine, seg = self.engine_over(corpus)
        assert engine.count("clinton") == 2
        assert engine.count("clinton") == 2  # prime the candidate cache
        texts.append("president clinton returns")
        new_corpus = InMemoryCorpus.from_texts(texts)
        engine.corpus = new_corpus
        seg.add_documents([DataUnit(len(TEXTS), texts[-1])])
        assert engine.count("clinton") == 3  # epoch key -> no stale hit

    def test_no_stale_candidates_after_delete(self, corpus):
        engine, seg = self.engine_over(corpus)
        assert engine.count("clinton") == 2
        seg.delete(1)  # "william jefferson clinton"
        assert engine.count("clinton") == 1


class TestMatcherCacheBounded:
    def test_capacity_enforced(self, corpus, index):
        engine = make_engine(corpus, index, matcher_cache_size=2)
        for pattern in ["cat", "mat", "chip", "song"]:
            engine.search(pattern)
        assert len(engine.matcher_cache) <= 2

    def test_matcher_hit_flag(self, corpus, index):
        engine = make_engine(corpus, index)
        cold = engine.search("cat")
        warm = engine.search("cat")
        assert cold.metrics.matcher_cache_hit is False
        assert warm.metrics.matcher_cache_hit is True

    def test_cache_stats_shape(self, corpus, index):
        engine = make_engine(corpus, index)
        engine.search("cat")
        stats = engine.cache_stats()
        assert set(stats) == {"plan", "candidates", "matcher"}
        assert stats["plan"]["misses"] >= 1


class TestQueryMetrics:
    def test_postings_counters(self, corpus, index):
        engine = make_engine(corpus, index)
        report = engine.search("clinton")
        metrics = report.metrics
        assert metrics is not None
        assert len(metrics.lookups) > 0
        assert metrics.postings_entries_decoded > 0
        assert metrics.postings_cache_misses > 0

    def test_decoded_ids_cache_hits_on_second_query(self, corpus, index):
        engine = make_engine(corpus, index)
        engine.search("clinton")
        warm = engine.search("clinton").metrics
        # the GramIndex decoded-ids cache serves every lookup now
        assert warm.postings_cache_hits == len(warm.lookups)
        assert warm.postings_entries_decoded == 0

    def test_intersection_sizes_recorded(self, corpus, index):
        engine = make_engine(corpus, index)
        metrics = engine.search("the cat").metrics
        assert metrics.intersect_input >= metrics.intersect_output
        assert metrics.intersect_input > 0

    def test_prefilter_and_confirmation_counters(self, corpus, index):
        engine = make_engine(corpus, index)
        # "catx" is covered by the weaker "ca" AND "at": both cat-units
        # are candidates, yet neither contains the literal "catx", so
        # the prefilter rejects them before the automaton runs
        report = engine.search("catx")
        metrics = report.metrics
        assert report.n_units_read == 2
        assert metrics.prefilter_rejected == 2
        assert metrics.units_confirmed == 0
        assert report.n_matches == 0

    def test_phase_timings_present(self, corpus, index):
        metrics = make_engine(corpus, index).search("cat").metrics
        assert set(metrics.phase_seconds) == {"plan", "execute"}
        assert all(t >= 0 for t in metrics.phase_seconds.values())

    def test_io_mirror_matches_report(self, corpus, index):
        engine = make_engine(corpus, index)
        report = engine.search("clinton")
        assert report.metrics.postings_charged == \
            report.io_detail["postings_read"]
        assert report.metrics.random_accesses == \
            report.io_detail["random_accesses"]

    def test_as_dict_and_pretty(self, corpus, index):
        metrics = make_engine(corpus, index).search("cat").metrics
        flat = metrics.as_dict()
        assert flat["plan_cache_hit"] is False
        assert "query metrics:" in metrics.pretty()
        assert "lookups" in metrics.pretty()

    def test_scan_engine_metrics(self, corpus):
        engine = FreeEngine(corpus, index=None)
        metrics = engine.search("cat").metrics
        assert metrics.sequential_chars > 0
        assert metrics.candidate_cache_hit is None


class TestExplainAnalyze:
    def test_analyze_annotates_actuals(self, corpus, index):
        engine = make_engine(corpus, index)
        text = engine.explain("clinton", analyze=True)
        assert "analyze:" in text
        assert "est " in text and "actual" in text
        assert "candidates: actual" in text
        assert "query metrics:" in text

    def test_plain_explain_unchanged(self, corpus, index):
        text = make_engine(corpus, index).explain("clinton")
        assert "analyze:" not in text
        assert "estimated:" in text

    def test_analyze_without_index(self, corpus):
        text = FreeEngine(corpus, index=None).explain(
            "clinton", analyze=True
        )
        assert "sequential scan" in text
        assert "analyze:" in text


class TestRepeatedQueryRunner:
    def test_three_tiers_and_identical_matches(self, corpus, index):
        rows = run_repeated_queries(
            corpus=corpus, index=index,
            queries={"clinton": "clinton", "cat": "the cat"},
            repeats=3,
        )
        by_mode = {row["mode"]: row for row in rows}
        assert set(by_mode) == {"uncached", "plan-cache", "full-cache"}
        assert by_mode["plan-cache"]["plan_cache_hits"] == 4  # 2 q x 2
        assert by_mode["full-cache"]["candidate_cache_hits"] == 4
        assert len({row["matches"] for row in rows}) == 1

    def test_repeats_validated(self, corpus, index):
        with pytest.raises(ValueError):
            run_repeated_queries(
                corpus=corpus, index=index, queries={"q": "cat"},
                repeats=0,
            )
