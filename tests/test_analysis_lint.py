"""FREE lint rule tests: each rule fires on a minimal seeded snippet,
stays silent on the compliant variant, and the repo itself lints clean."""

import textwrap

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.lint import RULES
from repro.analysis.runner import default_lint_root
from repro.errors import AnalysisError


def run(snippet):
    return lint_source(textwrap.dedent(snippet), "snippet.py")


def codes(findings):
    return [f.code for f in findings]


class TestBareAssert:
    def test_fires(self):
        assert codes(run("assert x == 1\n")) == ["FREE001"]

    def test_silent_on_raise(self):
        snippet = """
        if x != 1:
            raise InternalError("x drifted")
        """
        assert run(snippet) == []


class TestMutableDefaults:
    def test_list_literal(self):
        assert codes(run("def f(a=[]):\n    pass\n")) == ["FREE002"]

    def test_dict_call(self):
        assert codes(run("def f(a=dict()):\n    pass\n")) == ["FREE002"]

    def test_keyword_only_default(self):
        assert codes(run("def f(*, a={}):\n    pass\n")) == ["FREE002"]

    def test_none_default_ok(self):
        assert run("def f(a=None):\n    pass\n") == []

    def test_tuple_default_ok(self):
        assert run("def f(a=()):\n    pass\n") == []


class TestFloatEquality:
    def test_eq_literal(self):
        assert codes(run("ok = cost == 0.5\n")) == ["FREE003"]

    def test_noteq_negative_literal(self):
        assert codes(run("ok = cost != -1.0\n")) == ["FREE003"]

    def test_ordering_ok(self):
        assert run("ok = cost < 0.5\n") == []

    def test_int_equality_ok(self):
        assert run("ok = count == 3\n") == []


class TestUnboundedCache:
    def test_dict_literal_cache(self):
        snippet = """
        class A:
            def __init__(self):
                self._cache = {}
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_memo_name_matches(self):
        snippet = """
        class A:
            def __init__(self):
                self.memo_table = dict()
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_lru_cache_ok(self):
        snippet = """
        class A:
            def __init__(self):
                self._cache = LRUCache(64)
        """
        assert run(snippet) == []

    def test_non_cache_dict_ok(self):
        snippet = """
        class A:
            def __init__(self):
                self._postings = {}
        """
        assert run(snippet) == []

    def test_defaultdict_with_args(self):
        snippet = """
        class A:
            def __init__(self):
                self._cache = defaultdict(list)
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_collections_defaultdict(self):
        snippet = """
        import collections

        class A:
            def __init__(self):
                self.memo = collections.defaultdict(dict)
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_dict_comprehension(self):
        snippet = """
        class A:
            def __init__(self, keys):
                self._cache = {k: None for k in keys}
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_setattr_dynamic_store(self):
        snippet = """
        class A:
            def __init__(self):
                setattr(self, "result_cache", {})
        """
        findings = run(snippet)
        assert codes(findings) == ["FREE004"]
        assert "result_cache" in findings[0].message

    def test_setattr_non_cache_name_ok(self):
        snippet = """
        class A:
            def __init__(self):
                setattr(self, "postings", {})
        """
        assert run(snippet) == []

    def test_or_fallback_pattern(self):
        snippet = """
        class A:
            def __init__(self, seed):
                self._cache = seed or {}
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_ifexp_branch_pattern(self):
        snippet = """
        class A:
            def __init__(self, shared):
                self.memo = shared if shared else {}
        """
        assert codes(run(snippet)) == ["FREE004"]

    def test_annotated_assign_still_caught(self):
        snippet = """
        class A:
            def __init__(self):
                self._cache: dict = defaultdict(set)
        """
        assert codes(run(snippet)) == ["FREE004"]


EPOCH_SNIPPET = """
class Index:
    def __init__(self):
        self.epoch = 0
        self.segments = []

    def add(self, segment):
        self.segments.append(segment)
        %s
"""


class TestEpochBump:
    def test_mutation_without_bump_fires(self):
        findings = run(EPOCH_SNIPPET % "pass")
        assert codes(findings) == ["FREE005"]
        assert "Index.add()" in findings[0].message

    def test_direct_bump_ok(self):
        assert run(EPOCH_SNIPPET % "self.epoch += 1") == []

    def test_bump_via_sibling_ok(self):
        snippet = EPOCH_SNIPPET % "self._bump()" + """
    def _bump(self):
        self.epoch += 1
"""
        assert run(snippet) == []

    def test_class_without_epoch_ignored(self):
        snippet = """
        class Bag:
            def add(self, item):
                self.items.append(item)
        """
        assert run(snippet) == []

    def test_cache_mutation_exempt(self):
        snippet = """
        class Index:
            def __init__(self):
                self.epoch = 0

            def warm(self, key, value):
                self._cache[key] = value
        """
        assert run(snippet) == []


class TestWallClock:
    def test_module_call_fires(self):
        snippet = """
        import time
        started = time.time()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_module_alias_fires(self):
        snippet = """
        import time as t
        started = t.time()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_from_import_fires(self):
        snippet = """
        from time import time
        started = time()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_from_import_alias_fires(self):
        snippet = """
        from time import time as now
        started = now()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_perf_counter_ok(self):
        snippet = """
        import time
        started = time.perf_counter()
        """
        assert run(snippet) == []

    def test_obs_clock_ok(self):
        snippet = """
        from repro.obs.clock import monotonic
        started = monotonic()
        """
        assert run(snippet) == []

    def test_unrelated_time_name_ok(self):
        # A local function named time() with no time import in scope.
        snippet = """
        def time():
            return 0.0
        started = time()
        """
        assert run(snippet) == []

    def test_datetime_module_now_fires(self):
        snippet = """
        import datetime
        stamp = datetime.datetime.now()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_datetime_class_today_fires(self):
        snippet = """
        from datetime import datetime
        stamp = datetime.today()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_datetime_class_alias_utcnow_fires(self):
        snippet = """
        from datetime import datetime as dt
        stamp = dt.utcnow()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_date_today_through_module_fires(self):
        snippet = """
        import datetime
        day = datetime.date.today()
        """
        assert codes(run(snippet)) == ["FREE006"]

    def test_datetime_constructor_ok(self):
        # Building a fixed datetime is not a wall-clock read.
        snippet = """
        from datetime import datetime
        epoch = datetime(1970, 1, 1)
        """
        assert run(snippet) == []

    def test_unrelated_now_method_ok(self):
        # .now() on an unrelated object, no datetime binding used.
        snippet = """
        import datetime
        stamp = scheduler.now()
        """
        assert run(snippet) == []

    def test_datetime_noqa_escape_hatch(self):
        snippet = """
        import datetime
        stamp = datetime.datetime.now()  # noqa: FREE006
        """
        assert run(snippet) == []


class TestSuppression:
    def test_bare_noqa(self):
        assert run("assert x  # noqa\n") == []

    def test_targeted_noqa(self):
        assert run("assert x  # noqa: FREE001\n") == []

    def test_wrong_code_does_not_suppress(self):
        assert codes(run("assert x  # noqa: FREE003\n")) == ["FREE001"]

    def test_multiple_codes(self):
        snippet = "assert cost == 0.5  # noqa: FREE001, FREE003\n"
        assert run(snippet) == []

    def test_multiple_codes_suppress_only_listed(self):
        # Both rules fire on this line; only FREE003 is listed.
        snippet = "assert cost == 0.5  # noqa: FREE003\n"
        assert codes(run(snippet)) == ["FREE001"]

    def test_lowercase_noqa_and_code(self):
        assert run("assert x  # NOQA: free001\n") == []

    def test_trailing_comment_after_noqa(self):
        snippet = "assert x  # noqa: FREE001  (invariant is cheap)\n"
        assert run(snippet) == []

    def test_noqa_on_other_line_does_not_suppress(self):
        snippet = "# noqa: FREE001\nassert x\n"
        assert codes(run(snippet)) == ["FREE001"]


class TestEngine:
    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            lint_source("def f(:\n", "bad.py")

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            lint_paths(["/no/such/path/anywhere"])

    def test_findings_carry_filename_and_position(self):
        findings = run("x = 1\nassert x\n")
        assert findings[0].subject == "snippet.py"
        assert findings[0].location.startswith("2:")

    def test_rule_registry_complete(self):
        assert sorted(RULES) == [
            "FREE001", "FREE002", "FREE003", "FREE004", "FREE005",
            "FREE006",
        ]

    def test_repo_lints_clean(self):
        # The gate the CI job enforces: the package's own source has
        # no ERROR-severity lint findings.
        findings = lint_paths([default_lint_root()])
        assert [f for f in findings if f.severity.label() == "error"] == []
