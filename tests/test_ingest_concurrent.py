"""Ingest-while-query: one writer, many readers, zero exceptions.

The lifecycle's concurrency contract: a single writer thread may add,
delete, seal, and compact while any number of reader threads query the
same live ``corpus``/``index`` pair through private engines.  Readers
must never see an exception, epochs must be monotone, and a segment
image unlinked by compaction must stay readable for a reader holding
the pre-compaction snapshot (POSIX unlinked-mmap semantics).
"""

import os
import threading

from repro.index.builder import MultigramIndexBuilder
from repro.index.ingest import IngestDirectory, is_segment_file
from repro.index.segmented import SegmentedFreeEngine
from repro.obs.registry import MetricsRegistry
from repro.plan.logical import LogicalPlan
from repro.plan.physical import CoverPolicy

BUILDER = MultigramIndexBuilder(threshold=0.3, max_gram_len=5)

PATTERNS = ["cat", "clinton", "mpc[0-9]+", "(cat|mp3)", "page"]

N_DOCS = 90
N_READERS = 3


def _doc_text(position):
    tags = ["the cat sat", "william clinton", "motorola mpc750",
            "buy this mp3", "plain words only"]
    return f"page {position} {tags[position % len(tags)]}"


def _writer(directory, errors):
    try:
        live = []
        for position in range(N_DOCS):
            doc_id = directory.add(_doc_text(position))
            live.append(doc_id)
            if position % 7 == 6:
                directory.delete(live.pop(0))
        directory.compact()
    except Exception as exc:
        errors.append(f"writer: {type(exc).__name__}: {exc}")


def _reader(directory, stop, errors, epochs):
    engine = SegmentedFreeEngine(
        directory.corpus, directory.index, registry=MetricsRegistry()
    )
    try:
        with engine:
            position = 0
            while not stop.is_set():
                epochs.append(directory.epoch)
                pattern = PATTERNS[position % len(PATTERNS)]
                position += 1
                engine.search(pattern, collect_matches=True)
    except Exception as exc:
        errors.append(f"reader: {type(exc).__name__}: {exc}")


def test_ingest_while_query_no_exceptions(tmp_path):
    with IngestDirectory(
        str(tmp_path),
        builder=BUILDER,
        memtable_docs=8,
        fanout=2,
        auto_compact=True,
        registry=MetricsRegistry(),
    ) as directory:
        errors = []
        epoch_logs = [[] for _ in range(N_READERS)]
        stop = threading.Event()
        writer = threading.Thread(
            target=_writer, args=(directory, errors), name="writer"
        )
        readers = [
            threading.Thread(
                target=_reader,
                args=(directory, stop, errors, epoch_logs[i]),
                name=f"reader-{i}",
            )
            for i in range(N_READERS)
        ]
        writer.start()
        for thread in readers:
            thread.start()
        writer.join(timeout=120)
        assert not writer.is_alive(), "writer deadlocked"
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
            assert not thread.is_alive(), "reader deadlocked"

        assert errors == []
        # Every reader made progress and saw monotone epochs.
        for log in epoch_logs:
            assert log, "reader never ran"
            assert all(a <= b for a, b in zip(log, log[1:]))
        # The writer's final compact left a consistent single view.
        stats = directory.stats()
        assert stats["n_tombstones"] == 0
        expected_live = N_DOCS - (N_DOCS // 7)
        assert stats["n_live"] == expected_live
        assert len(directory.corpus) == expected_live


def test_unlinked_segment_stays_readable(tmp_path):
    """A reader holding the pre-compaction snapshot keeps answering
    from victim segments even after their images are unlinked."""
    with IngestDirectory(
        str(tmp_path),
        builder=BUILDER,
        memtable_docs=2,
        auto_compact=False,
        registry=MetricsRegistry(),
    ) as directory:
        for position in range(8):
            directory.add(_doc_text(position))
        old_segments, _ = directory.index.snapshot()
        assert len(old_segments) == 4
        old_names = [segment.file_name for segment in old_segments]

        directory.compact()

        # The victims' images are gone from the directory...
        remaining = [
            name for name in os.listdir(str(tmp_path))
            if is_segment_file(name)
        ]
        assert len(remaining) == 1
        assert not set(old_names) & set(remaining)
        # ...but the held snapshot still serves lookups and candidate
        # queries out of the unlinked mmaps.
        logical = LogicalPlan.from_pattern("cat")
        for segment in old_segments:
            candidates = segment.candidates(logical, CoverPolicy("all"))
            for gid in candidates:
                assert gid in segment.global_ids
            assert list(segment.index.keys()) is not None


def test_readers_see_each_doc_exactly_once(tmp_path):
    """During seal and merge there is no instant where a doc is
    answered twice (memtable + segment) or zero times."""
    with IngestDirectory(
        str(tmp_path),
        builder=BUILDER,
        memtable_docs=4,
        fanout=2,
        auto_compact=True,
        registry=MetricsRegistry(),
    ) as directory:
        errors = []
        stop = threading.Event()
        counts = []

        def reader():
            engine = SegmentedFreeEngine(
                directory.corpus, directory.index,
                registry=MetricsRegistry(),
            )
            try:
                with engine:
                    while not stop.is_set():
                        report = engine.search(
                            "uniquetoken", collect_matches=True
                        )
                        counts.append(report.n_matches)
            except Exception as exc:
                errors.append(f"{type(exc).__name__}: {exc}")

        # One doc carries the token; once acknowledged, every
        # concurrent observation must count it exactly once, through
        # seals and merges.
        directory.add("the one uniquetoken doc")
        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for position in range(40):
                directory.add(_doc_text(position))
            directory.compact()
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert errors == []
        assert counts, "reader never ran"
        assert set(counts) == {1}
