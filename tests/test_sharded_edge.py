"""Edge-case shard shapes + the first-k merge-order regression.

Every degenerate partition the sharder can produce — empty shards,
one-doc shards, everything in one shard, more shards than documents —
must build, pass ``free check``, serialize, and answer queries exactly
like the unsharded engine.  The second half pins the merge-order
contract: candidates are unioned in *global doc-id order* (shard
ordinal, not completion order), which is what makes first-k truncation
read the same unit prefix sharded as unsharded.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_check
from repro.corpus.store import InMemoryCorpus
from repro.engine.executor import merge_shard_candidates
from repro.engine.free import FreeEngine
from repro.engine.sharded import ShardedFreeEngine
from repro.index.builder import build_multigram_index
from repro.index.serialize import load_any_index, save_sharded_index
from repro.index.sharded import ShardedIndex

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "sphinx of black quartz judge my vow",
    "how vexingly quick daft zebras jump",
    "the five boxing wizards jump quickly",
    "jackdaws love my big sphinx of quartz",
    "mr jock tv quiz phd bags few lynx",
    "quick zephyrs blow vexing daft jim",
    "two driven jocks help fax my big quiz",
    "five quacking zephyrs jolt my wax bed",
]

PATTERNS = ["quick", "qu", "j(ump|udge|olt)", "five .* (jugs|wizards)"]


@pytest.fixture(scope="module")
def corpus():
    return InMemoryCorpus.from_texts(TEXTS)


@pytest.fixture(scope="module")
def reference(corpus):
    index = build_multigram_index(corpus, threshold=0.4, max_gram_len=4)
    return FreeEngine(corpus, index)


def fingerprint(report):
    return (
        [(m.doc_id, m.span) for m in report.matches],
        report.n_matches_found,
        report.matching_units,
    )


#: (label, n_shards) — every degenerate partition shape.
EDGE_SHAPES = [
    ("all-in-one-shard", 1),
    ("one-doc-per-shard", len(TEXTS)),
    ("more-shards-than-docs", len(TEXTS) + 5),
    ("generic-split", 3),
]


@pytest.mark.parametrize("label,n_shards", EDGE_SHAPES)
class TestEdgeShapes:
    def build(self, corpus, n_shards):
        return ShardedIndex.build(
            corpus, n_shards, threshold=0.4, max_gram_len=4
        )

    def test_builds_with_expected_partition(self, corpus, label, n_shards):
        sharded = self.build(corpus, n_shards)
        assert sharded.n_shards == n_shards
        assert sharded.n_docs == len(corpus)
        ranges = sharded.doc_ranges()
        assert ranges[0][0] == 0 and ranges[-1][1] == len(corpus)
        if n_shards > len(corpus):
            empties = [r for r in ranges if r[0] == r[1]]
            assert len(empties) == n_shards - len(corpus)

    def test_passes_free_check(self, corpus, label, n_shards):
        sharded = self.build(corpus, n_shards)
        report = run_check(index=sharded, patterns=PATTERNS)
        assert report.ok, [f.message for f in report.findings]

    def test_answers_identically(self, corpus, reference, label, n_shards):
        sharded = self.build(corpus, n_shards)
        engine = ShardedFreeEngine(corpus, sharded)
        for pattern in PATTERNS:
            assert fingerprint(engine.search(pattern)) == \
                fingerprint(reference.search(pattern)), pattern

    def test_serializes_and_answers_identically(
        self, corpus, reference, label, n_shards, tmp_path
    ):
        sharded = self.build(corpus, n_shards)
        path = str(tmp_path / "edge.fsi")
        save_sharded_index(sharded, path)
        loaded = load_any_index(path)
        assert isinstance(loaded, ShardedIndex)
        engine = ShardedFreeEngine(corpus, loaded)
        for pattern in PATTERNS:
            assert fingerprint(engine.search(pattern)) == \
                fingerprint(reference.search(pattern)), pattern


class TestMergeOrderRegression:
    """The union merge must preserve global doc-id order.

    Regression for the bug class the ISSUE calls out: collecting shard
    results by *completion order* would interleave doc ids and make a
    first-k query read a different unit prefix than the unsharded
    engine.
    """

    def test_ordinal_concatenation_is_sorted(self):
        assert merge_shard_candidates([[0, 2], [4, 5], [8]]) == \
            [0, 2, 4, 5, 8]

    def test_empty_parts_are_skipped(self):
        assert merge_shard_candidates([[], [3, 4], [], [7]]) == [3, 4, 7]
        assert merge_shard_candidates([[], [], []]) == []

    def test_out_of_order_parts_still_merge_sorted(self):
        # The safety net: a completion-order (or otherwise non-ordinal)
        # collection is detected at the shard boundary and heap-merged,
        # so the output is *still* globally sorted.
        assert merge_shard_candidates([[4, 5], [0, 2], [8]]) == \
            [0, 2, 4, 5, 8]

    def test_overlapping_parts_deduplicate(self):
        assert merge_shard_candidates([[0, 2, 5], [2, 5, 9]]) == \
            [0, 2, 5, 9]

    def test_sharded_candidates_are_globally_sorted(self, corpus):
        sharded = ShardedIndex.build(
            corpus, 4, threshold=0.4, max_gram_len=4
        )
        engine = ShardedFreeEngine(corpus, sharded)
        for pattern in PATTERNS:
            candidates = engine._candidates(pattern)
            if candidates is None:
                continue
            assert candidates == sorted(set(candidates)), pattern

    @pytest.mark.parametrize("n_shards", [1, 3, len(TEXTS) + 5])
    def test_first_k_truncation_identical(
        self, corpus, reference, n_shards
    ):
        """limit=k reads the same match prefix sharded as unsharded."""
        sharded = ShardedIndex.build(
            corpus, n_shards, threshold=0.4, max_gram_len=4
        )
        engine = ShardedFreeEngine(corpus, sharded)
        pattern = "qu"  # many matches spread across every shard
        full = reference.search(pattern)
        assert full.n_matches_found > 3
        for k in (1, 2, 3, full.n_matches_found):
            r_ref = reference.search(pattern, limit=k)
            r_shd = engine.search(pattern, limit=k)
            assert fingerprint(r_shd) == fingerprint(r_ref), (n_shards, k)
            assert r_shd.truncated == r_ref.truncated, (n_shards, k)
            # The k matches are exactly the unlimited run's first k —
            # the global-order prefix, not some shard's local prefix.
            assert [m.doc_id for m in r_shd.matches] == \
                [m.doc_id for m in full.matches][:k]

    def test_first_k_parallel_path_falls_back_to_sequential(self, corpus):
        """limit queries must take the central path even with workers."""
        sharded = ShardedIndex.build(
            corpus, 3, threshold=0.4, max_gram_len=4
        )
        with ShardedFreeEngine(
            corpus, sharded, workers=2, pool="process"
        ) as engine:
            r_limited = engine.search("qu", limit=2)
            r_full = engine.search("qu")
        assert r_limited.truncated
        assert [m.doc_id for m in r_limited.matches] == \
            [m.doc_id for m in r_full.matches][:2]
