"""End-to-end request observability through ``free serve``.

The acceptance property of the observability stack: ONE trace id,
supplied by the client as a W3C ``traceparent`` header, must come back
on the response header, appear in the request's JSONL query-log entry,
be retrievable from ``GET /debug/tracez``, and show up as the exemplar
on the latency histogram in ``GET /metrics`` — logs, metrics and
traces correlated by a single identifier.
"""

import http.client
import json
import re

import pytest

from repro.obs.ids import format_traceparent, parse_traceparent
from repro.obs.registry import MetricsRegistry, parse_prometheus_text
from repro.serve.service import (
    QueryService,
    ServeConfig,
    ServerThread,
    build_slots,
)

_TRACEPARENT_SHAPE = re.compile(r"^00-[0-9a-f]{32}-[0-9a-f]{16}-0[01]$")


def request(port, method, path, payload=None, headers=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        send_headers = dict(headers or {})
        if body:
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body, send_headers)
        resp = conn.getresponse()
        resp_headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, resp_headers, resp.read()
    finally:
        conn.close()


def make_server(corpus, index, registry=None, **config_kwargs):
    registry = registry if registry is not None else MetricsRegistry()
    config = ServeConfig(port=0, **config_kwargs)
    slots = build_slots(lambda: corpus, index, config, registry)
    service = QueryService(config, slots, registry=registry)
    return ServerThread(service)


def client_traceparent():
    tid = "ab" * 16
    sid = "cd" * 8
    return tid, format_traceparent(tid, sid, sampled=True)


@pytest.fixture(scope="module")
def traced_server(corpus, multigram_index, tmp_path_factory):
    """Sample-everything server with a query log, up for the module."""
    log_path = str(tmp_path_factory.mktemp("serve") / "queries.jsonl")
    thread = make_server(
        corpus, multigram_index,
        workers=2, queue_depth=16, timeout_seconds=30.0,
        trace_sample_rate=1.0, slow_trace_seconds=30.0,
        query_log_path=log_path,
    )
    with thread:
        yield thread, log_path


class TestEndToEndCorrelation:
    def test_one_id_across_header_log_tracez_and_exemplar(
        self, traced_server
    ):
        thread, log_path = traced_server
        tid, header = client_traceparent()

        status, headers, _body = request(
            thread.port, "POST", "/search",
            {"pattern": "stanford", "collect_matches": False},
            headers={"traceparent": header},
        )
        assert status == 200

        # 1. the response echoes the same trace id, flagged sampled
        echoed = parse_traceparent(headers["traceparent"])
        assert echoed is not None
        assert echoed.trace_id == tid
        assert echoed.sampled  # kept (rate=1.0) -> flag 01
        # ...with a server-minted span id, not the client's
        assert headers["traceparent"] != header

        # 2. the JSONL query log entry carries it
        with open(log_path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        ours = [e for e in entries if e["trace_id"] == tid]
        assert ours, "query log never saw the trace id"
        entry = ours[-1]
        assert entry["endpoint"] == "/search"
        assert entry["outcome"] == "ok"
        assert entry["sampled"] is True
        assert "plan" in entry["phase_seconds"]
        assert 0.0 <= entry["candidate_ratio"] <= 1.0

        # 3. /debug/tracez serves the stored span tree
        status, _h, body = request(thread.port, "GET", "/debug/tracez")
        assert status == 200
        traces = json.loads(body)["traces"]
        match = [t for t in traces if t["trace_id"] == tid]
        assert match, "trace store never kept the trace"
        stored = match[-1]
        assert stored["status"] == 200
        assert stored["trace"]["trace_id"] == tid
        span_names = [s["name"] for s in stored["trace"]["spans"]]
        assert span_names == ["/search"]
        # the engine's span taxonomy hangs under the endpoint root
        children = {
            c["name"] for c in stored["trace"]["spans"][0]["children"]
        }
        assert "search" in children
        assert stored["phase_seconds"].keys() >= {"plan"}
        # the client's span id is preserved as the parent link
        assert stored["parent_span_id"] == "cd" * 8

        # 4. /metrics carries the id as a latency-histogram exemplar
        status, _h, body = request(thread.port, "GET", "/metrics")
        assert status == 200
        exposition = body.decode("utf-8")
        exemplar_lines = [
            line for line in exposition.splitlines()
            if line.startswith("free_serve_request_seconds_bucket")
            and f'# {{trace_id="{tid}"}}' in line
        ]
        assert exemplar_lines, "no exemplar carries the trace id"
        assert 'endpoint="/search"' in exemplar_lines[0]
        # and the strict parser accepts the exemplar-bearing text
        parse_prometheus_text(exposition)

    def test_fresh_identity_minted_without_inbound_header(
        self, traced_server
    ):
        thread, _log_path = traced_server
        _status, headers, _body = request(
            thread.port, "POST", "/search",
            {"pattern": "ebay", "collect_matches": False},
        )
        assert _TRACEPARENT_SHAPE.match(headers["traceparent"])

    def test_malformed_inbound_header_is_replaced(self, traced_server):
        thread, _log_path = traced_server
        _status, headers, _body = request(
            thread.port, "POST", "/search",
            {"pattern": "ebay", "collect_matches": False},
            headers={"traceparent": "00-zzz-bad-01"},
        )
        echoed = parse_traceparent(headers["traceparent"])
        assert echoed is not None
        assert echoed.trace_id != "zzz"

    def test_every_endpoint_echoes_traceparent(self, traced_server):
        thread, _log_path = traced_server
        probes = [
            ("GET", "/healthz", None),
            ("GET", "/metrics", None),
            ("GET", "/debug/vars", None),
            ("GET", "/no/such/endpoint", None),  # 404 still echoes
            ("GET", "/search", None),  # 405 still echoes
        ]
        for method, path, payload in probes:
            _status, headers, _body = request(
                thread.port, method, path, payload
            )
            assert "traceparent" in headers, path
            assert _TRACEPARENT_SHAPE.match(headers["traceparent"]), path


class TestSamplingBehaviour:
    def test_rate_zero_marks_responses_unsampled(
        self, corpus, multigram_index
    ):
        thread = make_server(
            corpus, multigram_index,
            trace_sample_rate=0.0, slow_trace_seconds=30.0,
        )
        with thread:
            _status, headers, _body = request(
                thread.port, "POST", "/search",
                {"pattern": "stanford", "collect_matches": False},
            )
            echoed = parse_traceparent(headers["traceparent"])
            assert echoed is not None and not echoed.sampled
            _status, _h, body = request(
                thread.port, "GET", "/debug/tracez"
            )
            assert json.loads(body)["traces"] == []

    def test_slow_requests_always_retained(self, corpus, multigram_index):
        # a 1ms threshold classifies every real query as slow even
        # with probabilistic sampling off
        thread = make_server(
            corpus, multigram_index,
            trace_sample_rate=0.0, slow_trace_seconds=0.001,
        )
        with thread:
            _status, headers, _body = request(
                thread.port, "POST", "/search",
                {"pattern": "stanford", "collect_matches": False},
            )
            echoed = parse_traceparent(headers["traceparent"])
            assert echoed is not None and echoed.sampled
            _status, _h, body = request(
                thread.port, "GET", "/debug/slowqueries"
            )
            slowest = json.loads(body)["slowest"]
            assert len(slowest) == 1
            assert slowest[0]["sampled_reason"] == "slow"
            assert slowest[0]["duration_seconds"] >= 0.001


class TestDebugEndpoints:
    def test_tracez_text_format_renders_span_trees(self, traced_server):
        thread, _log_path = traced_server
        tid, header = client_traceparent()
        request(
            thread.port, "POST", "/first_k",
            {"pattern": "stanford", "k": 2},
            headers={"traceparent": header},
        )
        status, headers, body = request(
            thread.port, "GET", "/debug/tracez?format=text&n=50"
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert f"trace {tid} /first_k" in text
        assert "/first_k" in text and "search" in text

    def test_tracez_rejects_bad_n(self, traced_server):
        thread, _log_path = traced_server
        for query in ("?n=zero", "?n=0", "?n=-3"):
            status, _h, _body = request(
                thread.port, "GET", f"/debug/tracez{query}"
            )
            assert status == 400

    def test_debug_endpoints_are_get_only(self, traced_server):
        thread, _log_path = traced_server
        for path in ("/debug/tracez", "/debug/slowqueries", "/debug/vars"):
            status, _h, _body = request(thread.port, "POST", path, {})
            assert status == 405

    def test_vars_exposes_config_stats_and_store(self, traced_server):
        thread, _log_path = traced_server
        status, _h, body = request(thread.port, "GET", "/debug/vars")
        assert status == 200
        payload = json.loads(body)
        assert payload["config"]["trace_sample_rate"] == 1.0
        assert payload["config"]["workers"] == 2
        assert payload["stats"]["queries"] >= 0
        store = payload["trace_store"]
        assert store["capacity"] == 128
        assert store["offered"] >= store["kept_sampled"]
        assert payload["query_log"]["path"].endswith("queries.jsonl")

    def test_log_outcome_labels_cover_error_paths(self, traced_server):
        thread, log_path = traced_server
        tid = "ef" * 16
        header = format_traceparent(tid, "ab" * 8)
        status, _h, _body = request(
            thread.port, "POST", "/search",
            {"pattern": "unclosed("},  # engine parse error -> 400
            headers={"traceparent": header},
        )
        assert status == 400
        with open(log_path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        ours = [e for e in entries if e["trace_id"] == tid]
        assert ours and ours[-1]["outcome"] == "client_error"
        assert ours[-1]["n_matches"] is None
