"""Serialization fuzzing: random indexes round-trip; truncations fail clean."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationError
from repro.index.multigram import GramIndex
from repro.index.postings import PostingsList
from repro.index.serialize import load_index, save_index


@st.composite
def random_indexes(draw):
    n_keys = draw(st.integers(0, 12))
    postings = {}
    for _ in range(n_keys):
        key = draw(st.text(
            alphabet="ab<>/.x", min_size=1, max_size=8
        ))
        ids = draw(st.lists(st.integers(0, 500), unique=True, max_size=20))
        postings[key] = PostingsList.from_ids(ids)
    n_docs = draw(st.integers(0, 501))
    threshold = draw(st.one_of(st.none(), st.floats(0, 1)))
    return GramIndex(
        postings,
        kind=draw(st.sampled_from(["multigram", "presuf", "complete"])),
        n_docs=n_docs,
        threshold=threshold,
        max_gram_len=draw(st.one_of(st.none(), st.integers(1, 10))),
    )


@settings(max_examples=80, deadline=None)
@given(index=random_indexes())
def test_roundtrip_property(index, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("fuzz") / "idx.img")
    save_index(index, path)
    loaded = load_index(path)
    assert set(loaded.keys()) == set(index.keys())
    for key in index.keys():
        assert loaded.lookup(key).ids() == index.lookup(key).ids()
    assert loaded.kind == index.kind
    assert loaded.n_docs == index.n_docs
    assert loaded.threshold == index.threshold


@settings(max_examples=60, deadline=None)
@given(
    index=random_indexes(),
    cut_fraction=st.floats(0.0, 0.999),
)
def test_any_truncation_fails_clean(index, cut_fraction, tmp_path_factory):
    """Every proper prefix of an image must raise SerializationError
    (never a crash, never a silently wrong index)."""
    path = str(tmp_path_factory.mktemp("fuzz") / "idx.img")
    save_index(index, path)
    size = os.path.getsize(path)
    cut = int(size * cut_fraction)
    if cut >= size:
        return
    with open(path, "r+b") as f:
        f.truncate(cut)
    with pytest.raises(SerializationError):
        load_index(path)
