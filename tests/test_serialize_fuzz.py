"""Serialization fuzzing: random indexes round-trip; truncations fail clean."""

import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationError
from repro.index.multigram import GramIndex
from repro.index.postings import PostingsList, decode_gaps, encode_gaps
from repro.index.serialize import load_index, save_index


@st.composite
def random_indexes(draw):
    n_keys = draw(st.integers(0, 12))
    postings = {}
    for _ in range(n_keys):
        key = draw(st.text(
            alphabet="ab<>/.x", min_size=1, max_size=8
        ))
        ids = draw(st.lists(st.integers(0, 500), unique=True, max_size=20))
        postings[key] = PostingsList.from_ids(ids)
    n_docs = draw(st.integers(0, 501))
    threshold = draw(st.one_of(st.none(), st.floats(0, 1)))
    return GramIndex(
        postings,
        kind=draw(st.sampled_from(["multigram", "presuf", "complete"])),
        n_docs=n_docs,
        threshold=threshold,
        max_gram_len=draw(st.one_of(st.none(), st.integers(1, 10))),
    )


@settings(max_examples=80, deadline=None)
@given(index=random_indexes())
def test_roundtrip_property(index, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("fuzz") / "idx.img")
    save_index(index, path)
    loaded = load_index(path)
    assert set(loaded.keys()) == set(index.keys())
    for key in index.keys():
        assert loaded.lookup(key).ids() == index.lookup(key).ids()
    assert loaded.kind == index.kind
    assert loaded.n_docs == index.n_docs
    assert loaded.threshold == index.threshold


@settings(max_examples=60, deadline=None)
@given(
    index=random_indexes(),
    cut_fraction=st.floats(0.0, 0.999),
)
def test_any_truncation_fails_clean(index, cut_fraction, tmp_path_factory):
    """Every proper prefix of an image must raise SerializationError
    (never a crash, never a silently wrong index)."""
    path = str(tmp_path_factory.mktemp("fuzz") / "idx.img")
    save_index(index, path)
    size = os.path.getsize(path)
    cut = int(size * cut_fraction)
    if cut >= size:
        return
    with open(path, "r+b") as f:
        f.truncate(cut)
    with pytest.raises(SerializationError):
        load_index(path)


class TestTruncatedVarints:
    """A postings payload ending mid-varint must never decode silently:
    soundness (candidates ⊇ matches) dies with the dropped doc ids."""

    def test_lone_continuation_byte_raises(self):
        with pytest.raises(ValueError):
            decode_gaps(b"\x80")

    def test_chopped_multibyte_varint_raises(self):
        # The gap 299 needs two varint bytes; dropping the final byte
        # leaves the continuation bit set on the stream's last byte.
        data = encode_gaps([5, 305])
        assert len(data) == 3
        with pytest.raises(ValueError):
            decode_gaps(data[:-1])

    @settings(max_examples=60, deadline=None)
    @given(ids=st.lists(st.integers(0, 10_000), unique=True, min_size=1))
    def test_any_mid_varint_cut_raises_or_shrinks(self, ids):
        """Cutting anywhere inside the payload either raises (mid-varint)
        or decodes strictly fewer ids (boundary cut) — never garbage."""
        data = encode_gaps(sorted(ids))
        for cut in range(len(data)):
            try:
                decoded = decode_gaps(data[:cut])
            except ValueError:
                continue
            assert len(decoded) < len(ids)
            assert decoded == sorted(ids)[: len(decoded)]


def _write_image(path, key, payload, count):
    """A minimal hand-rolled index image with one key."""
    meta = (b'{"kind": "multigram", "n_docs": 10, '
            b'"threshold": 0.1, "max_gram_len": 4}')
    with open(path, "wb") as out:
        out.write(b"FREEIDX1")
        out.write(struct.pack("<I", len(meta)))
        out.write(meta)
        out.write(struct.pack("<I", 1))
        key_bytes = key.encode("utf-8")
        out.write(struct.pack("<H", len(key_bytes)))
        out.write(key_bytes)
        out.write(struct.pack("<I", count))
        out.write(struct.pack("<I", len(payload)))
        out.write(payload)


class TestCorruptPostingsPayloads:
    """load_index must validate payloads, not just field framing."""

    def test_unterminated_varint_payload_rejected(self, tmp_path):
        path = str(tmp_path / "bad.img")
        _write_image(path, "ab", encode_gaps([1, 200])[:-1], count=2)
        with pytest.raises(SerializationError, match="corrupt postings"):
            load_index(path)

    def test_count_mismatch_rejected(self, tmp_path):
        # A cut on a varint boundary decodes cleanly but loses ids; the
        # stored count is the tripwire that still catches it.
        path = str(tmp_path / "bad.img")
        payload = encode_gaps([1, 2, 3])
        assert decode_gaps(payload[:-1]) == [1, 2]  # boundary cut
        _write_image(path, "ab", payload[:-1], count=3)
        with pytest.raises(SerializationError, match="count mismatch"):
            load_index(path)

    def test_exact_payload_loads(self, tmp_path):
        path = str(tmp_path / "good.img")
        _write_image(path, "ab", encode_gaps([1, 200]), count=2)
        index = load_index(path)
        assert index.lookup("ab").ids() == [1, 200]
