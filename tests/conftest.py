"""Shared fixtures: a small seeded corpus and the three index flavours.

Session-scoped because index construction is the expensive step; every
test that needs "a realistic corpus with features" shares these.
"""

from __future__ import annotations

import pytest

from repro import (
    FreeEngine,
    ScanEngine,
    build_complete_index,
    build_corpus,
    build_multigram_index,
)

#: Small enough to keep the suite fast, large enough that every planted
#: feature appears and gram statistics are meaningful.
CORPUS_PAGES = 220
CORPUS_SEED = 1234

#: Boost the rare features so they all occur even in a small corpus.
FEATURE_BOOST = {
    "powerpc": 0.02,
    "clinton": 0.03,
    "sigmod": 0.03,
    "mp3": 0.03,
    "ebay": 0.04,
    "stanford": 0.04,
}


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(
        n_pages=CORPUS_PAGES, seed=CORPUS_SEED, feature_probs=FEATURE_BOOST
    )


@pytest.fixture(scope="session")
def multigram_index(corpus):
    return build_multigram_index(corpus, threshold=0.1, max_gram_len=10)


@pytest.fixture(scope="session")
def presuf_index(corpus):
    return build_multigram_index(
        corpus, threshold=0.1, max_gram_len=10, presuf=True
    )


@pytest.fixture(scope="session")
def complete_index(corpus):
    # k = 2..6 keeps the complete baseline small enough for tests while
    # still covering every benchmark gram lookup length that matters.
    return build_complete_index(corpus, k_values=range(2, 7))


@pytest.fixture(scope="session")
def free_engine(corpus, multigram_index):
    return FreeEngine(corpus, multigram_index)


@pytest.fixture(scope="session")
def scan_engine(corpus):
    return ScanEngine(corpus)
