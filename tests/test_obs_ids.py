"""Request identity: trace/span ids and W3C traceparent parsing.

The Hypothesis round-trip is the load-bearing property: any identity
this process formats must parse back to the same identity on the next
hop (or in our own connection handler when a client echoes it back).
The rejection tests pin the strictness the W3C spec demands — the
serving layer treats any ``None`` parse as "mint a fresh identity", so
over-acceptance would silently adopt garbage trace ids.
"""

import re

from hypothesis import given, settings, strategies as st

from repro.obs.ids import (
    FLAG_SAMPLED,
    SPAN_ID_HEX_LEN,
    TRACE_ID_HEX_LEN,
    TraceParent,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    should_sample,
    trace_id_fraction,
)

_HEX = "0123456789abcdef"


def _hex_id(length, nonzero=True):
    ids = st.text(alphabet=_HEX, min_size=length, max_size=length)
    if nonzero:
        ids = ids.filter(lambda s: s != "0" * length)
    return ids


class TestIdGeneration:
    def test_trace_id_shape(self):
        for _ in range(32):
            tid = new_trace_id()
            assert re.fullmatch(r"[0-9a-f]{32}", tid)
            assert tid != "0" * TRACE_ID_HEX_LEN

    def test_span_id_shape(self):
        for _ in range(32):
            sid = new_span_id()
            assert re.fullmatch(r"[0-9a-f]{16}", sid)
            assert sid != "0" * SPAN_ID_HEX_LEN

    def test_ids_are_distinct(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(
        trace_id=_hex_id(TRACE_ID_HEX_LEN),
        span_id=_hex_id(SPAN_ID_HEX_LEN),
        sampled=st.booleans(),
    )
    def test_format_parse_round_trip(self, trace_id, span_id, sampled):
        header = format_traceparent(trace_id, span_id, sampled=sampled)
        parsed = parse_traceparent(header)
        assert parsed == TraceParent(
            trace_id=trace_id, span_id=span_id, sampled=sampled
        )
        # and the dataclass re-formats to the identical header
        assert parsed.format() == header

    @settings(max_examples=100, deadline=None)
    @given(
        trace_id=_hex_id(TRACE_ID_HEX_LEN),
        span_id=_hex_id(SPAN_ID_HEX_LEN),
    )
    def test_surrounding_whitespace_tolerated(self, trace_id, span_id):
        header = "  " + format_traceparent(trace_id, span_id) + "\t"
        parsed = parse_traceparent(header)
        assert parsed is not None and parsed.trace_id == trace_id


class TestRejection:
    def test_none_and_empty(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("   ") is None

    def test_malformed_shapes(self):
        tid, sid = "ab" * 16, "cd" * 8
        bad = [
            "not-a-traceparent",
            f"00-{tid}-{sid}",             # missing flags
            f"00-{tid}-{sid}-1",           # flags too short
            f"00-{tid}-{sid}-012",         # flags too long
            f"00-{tid[:-1]}-{sid}-01",     # short trace id
            f"00-{tid}-{sid[:-1]}-01",     # short span id
            f"00-{tid}x-{sid}-01",         # long trace id
            f"0-{tid}-{sid}-01",           # short version
            f"00_{tid}-{sid}-01",          # wrong separator
        ]
        for header in bad:
            assert parse_traceparent(header) is None, header

    def test_non_hex_and_uppercase_rejected(self):
        tid, sid = "ab" * 16, "cd" * 8
        assert parse_traceparent(f"00-{'g' * 32}-{sid}-01") is None
        assert parse_traceparent(f"00-{tid.upper()}-{sid}-01") is None
        assert parse_traceparent(f"00-{tid}-{sid.upper()}-01") is None
        assert parse_traceparent(f"00-{tid}-{sid}-0G") is None

    def test_all_zero_ids_rejected(self):
        tid, sid = "ab" * 16, "cd" * 8
        assert parse_traceparent(f"00-{'0' * 32}-{sid}-01") is None
        assert parse_traceparent(f"00-{tid}-{'0' * 16}-01") is None

    def test_version_ff_rejected(self):
        header = f"ff-{'ab' * 16}-{'cd' * 8}-01"
        assert parse_traceparent(header) is None

    def test_version_00_rejects_trailing_fields(self):
        base = f"00-{'ab' * 16}-{'cd' * 8}-01"
        assert parse_traceparent(base + "-extra") is None
        assert parse_traceparent(base + "x") is None

    def test_higher_version_allows_dash_suffix_only(self):
        base = f"42-{'ab' * 16}-{'cd' * 8}-01"
        parsed = parse_traceparent(base + "-future-fields")
        assert parsed is not None and parsed.trace_id == "ab" * 16
        assert parse_traceparent(base + "junk") is None

    @settings(max_examples=100, deadline=None)
    @given(junk=st.text(max_size=64))
    def test_arbitrary_text_never_raises(self, junk):
        parse_traceparent(junk)  # None or TraceParent; never an error


class TestSamplingFlag:
    def test_flag_bit_parsed(self):
        tid, sid = "ab" * 16, "cd" * 8
        assert parse_traceparent(f"00-{tid}-{sid}-01").sampled
        assert not parse_traceparent(f"00-{tid}-{sid}-00").sampled
        # other flag bits set alongside sampled
        flags = f"{FLAG_SAMPLED | 0x02:02x}"
        assert parse_traceparent(f"00-{tid}-{sid}-{flags}").sampled


class TestDeterministicSampling:
    def test_fraction_in_unit_interval_and_deterministic(self):
        for _ in range(64):
            tid = new_trace_id()
            fraction = trace_id_fraction(tid)
            assert 0.0 <= fraction < 1.0
            assert fraction == trace_id_fraction(tid)

    def test_rate_extremes(self):
        tid = new_trace_id()
        assert should_sample(tid, 1.0)
        assert should_sample(tid, 2.0)
        assert not should_sample(tid, 0.0)
        assert not should_sample(tid, -1.0)

    def test_decision_matches_fraction(self):
        low = "0" * 31 + "1"     # fraction ~ 0
        high = "f" * 32          # fraction ~ 1
        assert should_sample(low, 0.5)
        assert not should_sample(high, 0.5)

    def test_same_id_same_decision_everywhere(self):
        # the property that lets every process sample without
        # coordination: the decision is a pure function of (id, rate)
        for _ in range(32):
            tid = new_trace_id()
            assert should_sample(tid, 0.3) == should_sample(tid, 0.3)
