"""Plan executor tests: Boolean evaluation over postings."""

from repro.engine.executor import execute_plan
from repro.index.multigram import GramIndex
from repro.index.postings import PostingsList
from repro.iomodel.diskmodel import DiskModel
from repro.plan.logical import LogicalPlan
from repro.plan.physical import PhysicalPlan


def index_with(postings_map, n_docs=10):
    postings = {
        key: PostingsList.from_ids(ids) for key, ids in postings_map.items()
    }
    return GramIndex(postings, kind="multigram", n_docs=n_docs, threshold=0.5)


def plan_for(pattern, index, policy="all"):
    return PhysicalPlan.compile(
        LogicalPlan.from_pattern(pattern), index, policy
    )


class TestExecution:
    def test_single_lookup(self):
        index = index_with({"abc": [1, 4, 7]})
        assert execute_plan(plan_for("abc", index), index) == [1, 4, 7]

    def test_and_intersects(self):
        index = index_with({"abc": [1, 2, 3], "xyz": [2, 3, 4]})
        assert execute_plan(plan_for("abc.*xyz", index), index) == [2, 3]

    def test_or_unions(self):
        index = index_with({"abc": [1, 2], "xyz": [4]})
        assert execute_plan(plan_for("abc|xyz", index), index) == [1, 2, 4]

    def test_full_scan_returns_none(self):
        index = index_with({})
        assert execute_plan(plan_for("zzz", index), index) is None

    def test_nested_formula(self):
        index = index_with({
            "aa": [1, 2, 3, 4], "bb": [2, 3], "cc": [3, 4, 5],
        })
        # (aa|bb).*cc -> candidates = (aa ∪ bb) ∩ cc
        result = execute_plan(plan_for("(aa|bb).*cc", index), index)
        assert result == [3, 4]

    def test_empty_intersection(self):
        index = index_with({"aa": [1], "bb": [2]})
        assert execute_plan(plan_for("aa.*bb", index), index) == []

    def test_postings_charged_to_disk(self):
        index = index_with({"abc": [1, 2, 3], "xyz": [2]})
        disk = DiskModel()
        execute_plan(plan_for("abc.*xyz", index), index, disk)
        assert disk.postings_read == 4

    def test_no_disk_is_fine(self):
        index = index_with({"abc": [1]})
        assert execute_plan(plan_for("abc", index), index, None) == [1]
