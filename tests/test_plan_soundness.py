"""THE invariant: index filtering never loses a true match.

For arbitrary regexes and corpora, and any index flavour (complete,
multigram at any threshold, presuf shell), the candidate set produced by
the physical plan must be a superset of the data units that actually
contain a match.  This is the property that makes FREE an *accelerator*
rather than an approximation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.corpus.store import InMemoryCorpus
from repro.engine.executor import execute_plan
from repro.index.builder import build_multigram_index
from repro.index.kgram import build_complete_index
from repro.plan.logical import LogicalPlan
from repro.plan.physical import CoverPolicy, PhysicalPlan
from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.matcher import Matcher

ALPHABET = "ab<"


def asts(max_leaves=6):
    chars = st.sampled_from(ALPHABET).map(ast.Char.literal)
    classes = st.sets(
        st.sampled_from(ALPHABET), min_size=1, max_size=2
    ).map(lambda s: ast.Char(CharClass(s)))
    leaves = st.one_of(chars, chars, classes)  # bias towards literals
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: ast.concat(*t)),
            st.tuples(inner, inner).map(lambda t: ast.alt(*t)),
            inner.map(ast.Star),
            inner.map(ast.Plus),
            inner.map(ast.Opt),
        ),
        max_leaves=max_leaves,
    )


corpora = st.lists(
    st.text(alphabet=ALPHABET, min_size=0, max_size=20),
    min_size=1,
    max_size=8,
).map(InMemoryCorpus.from_texts)


def true_matching_units(corpus, matcher):
    return {u.doc_id for u in corpus if matcher.contains(u.text)}


def candidates_of(corpus, index, node, policy=CoverPolicy.ALL):
    logical = LogicalPlan.from_pattern(node)
    plan = PhysicalPlan.compile(logical, index, policy)
    result = execute_plan(plan, index)
    if result is None:
        return set(range(len(corpus)))
    return set(result)


@settings(max_examples=120, deadline=None)
@given(
    node=asts(),
    corpus=corpora,
    threshold=st.sampled_from([0.0, 0.2, 0.5, 0.9]),
)
def test_multigram_candidates_are_superset(node, corpus, threshold):
    index = build_multigram_index(
        corpus, threshold=threshold, max_gram_len=4
    )
    matcher = Matcher(node, anchoring=False)
    truth = true_matching_units(corpus, matcher)
    assert truth <= candidates_of(corpus, index, node)


@settings(max_examples=80, deadline=None)
@given(node=asts(), corpus=corpora)
def test_presuf_candidates_are_superset(node, corpus):
    index = build_multigram_index(
        corpus, threshold=0.5, max_gram_len=4, presuf=True
    )
    matcher = Matcher(node, anchoring=False)
    truth = true_matching_units(corpus, matcher)
    assert truth <= candidates_of(corpus, index, node)


@settings(max_examples=80, deadline=None)
@given(node=asts(), corpus=corpora)
def test_complete_candidates_are_superset(node, corpus):
    index = build_complete_index(corpus, k_values=[2, 3], max_keys=None)
    matcher = Matcher(node, anchoring=False)
    truth = true_matching_units(corpus, matcher)
    assert truth <= candidates_of(corpus, index, node)


@settings(max_examples=60, deadline=None)
@given(
    node=asts(),
    corpus=corpora,
    policy=st.sampled_from(list(CoverPolicy)),
)
def test_every_cover_policy_is_sound(node, corpus, policy):
    index = build_multigram_index(
        corpus, threshold=0.4, max_gram_len=3, presuf=True
    )
    matcher = Matcher(node, anchoring=False)
    truth = true_matching_units(corpus, matcher)
    assert truth <= candidates_of(corpus, index, node, policy)


@settings(max_examples=60, deadline=None)
@given(node=asts(), corpus=corpora)
def test_engine_end_to_end_equals_scan(node, corpus):
    """FreeEngine and ScanEngine must return identical match sets."""
    from repro.engine.free import FreeEngine
    from repro.engine.scan import ScanEngine

    index = build_multigram_index(corpus, threshold=0.3, max_gram_len=4)
    free = FreeEngine(corpus, index)
    scan = ScanEngine(corpus)
    pattern = node.to_pattern()
    r_free = free.search(pattern)
    r_scan = scan.search(pattern)
    assert [(m.doc_id, m.span) for m in r_free.matches] == \
        [(m.doc_id, m.span) for m in r_scan.matches]
