"""Sharded-index analyzer tests: SHD001..SHD003 fire on seeded
violations and stay quiet on indexes the builder actually produces."""

import pytest

from repro.analysis import check_sharded_index, run_check
from repro.corpus.store import InMemoryCorpus
from repro.index.serialize import save_sharded_index
from repro.index.sharded import ShardedIndex


def codes(findings):
    return [f.code for f in findings]


def errors(findings):
    return [f for f in findings if f.severity.label() == "error"]


@pytest.fixture()
def small_corpus():
    texts = [
        "the quick brown fox jumps",
        "pack my box with five dozen jugs",
        "sphinx of black quartz judge my vow",
        "how vexingly quick daft zebras jump",
        "the five boxing wizards jump quickly",
        "jackdaws love my big sphinx of quartz",
        "mr jock tv quiz phd bags few lynx",
    ]
    return InMemoryCorpus.from_texts(texts)


def build_sharded(corpus, n_shards=3):
    return ShardedIndex.build(corpus, n_shards, threshold=0.4, max_gram_len=4)


class TestCleanShardedIndex:
    def test_builder_output_is_clean(self, small_corpus):
        sharded = build_sharded(small_corpus)
        assert errors(check_sharded_index(sharded)) == []

    def test_clean_with_corpus_chars(self, small_corpus):
        sharded = build_sharded(small_corpus)
        chars = sum(len(u.text) for u in small_corpus)
        assert errors(check_sharded_index(sharded, chars)) == []

    def test_more_shards_than_docs_is_clean(self, small_corpus):
        # Trailing shards are empty: legal, and the analyzer agrees.
        sharded = build_sharded(small_corpus, n_shards=11)
        assert errors(check_sharded_index(sharded)) == []


class TestShd001Partition:
    def test_overlapping_ids_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        # Shard 1 claims a doc shard 0 already owns.
        sharded.shards[1].global_ids[0] = 0
        findings = check_sharded_index(sharded)
        assert "SHD001" in codes(findings)

    def test_gap_in_tiling_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        last = sharded.shards[-1]
        last.global_ids[:] = [gid + 1 for gid in last.global_ids]
        findings = check_sharded_index(sharded)
        assert "SHD001" in codes(findings)

    def test_reordered_ids_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        ids = sharded.shards[0].global_ids
        ids[0], ids[1] = ids[1], ids[0]
        findings = check_sharded_index(sharded)
        assert "SHD001" in codes(findings)

    def test_id_count_vs_index_docs_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        sharded.shards[0].global_ids.pop()
        findings = check_sharded_index(sharded)
        shd001 = [f for f in findings if f.code == "SHD001"]
        assert any("built over" in f.message for f in shd001)


class TestShd002PerShardBound:
    def test_postings_over_shard_chars_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        # Pretend the shard's slice was a single character: its real
        # postings now exceed the Obs 3.8 per-shard bound.
        sharded.shards[0].index.stats.corpus_chars = 1
        findings = check_sharded_index(sharded)
        shd002 = [f for f in findings if f.code == "SHD002"]
        assert shd002 and shd002[0].paper_ref == "Obs 3.8"

    def test_unrecorded_chars_skips_bound(self, small_corpus):
        # corpus_chars == 0 means "not recorded", not "empty slice".
        sharded = build_sharded(small_corpus)
        sharded.shards[0].index.stats.corpus_chars = 0
        assert "SHD002" not in codes(check_sharded_index(sharded))


class TestShd003SummedStats:
    def test_doc_total_mismatch_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        sharded.shards[1].index.stats.n_docs += 2
        findings = check_sharded_index(sharded)
        assert "SHD003" in codes(findings)

    def test_postings_total_mismatch_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        sharded.shards[1].index.stats.n_postings += 5
        findings = check_sharded_index(sharded)
        assert "SHD003" in codes(findings)

    def test_corpus_chars_mismatch_detected(self, small_corpus):
        sharded = build_sharded(small_corpus)
        chars = sum(len(u.text) for u in small_corpus)
        findings = check_sharded_index(sharded, corpus_chars=chars + 100)
        assert "SHD003" in codes(findings)


class TestRunCheckSharded:
    def test_run_check_accepts_sharded_index(self, small_corpus):
        sharded = build_sharded(small_corpus)
        report = run_check(index=sharded, patterns=["quick", "j(ump|udge)"])
        assert report.ok
        # Plan soundness ran per shard, labelled as such.
        assert any("@ shard[" in s for s in report.justifications)

    def test_run_check_loads_sharded_image(self, small_corpus, tmp_path):
        sharded = build_sharded(small_corpus)
        path = str(tmp_path / "corpus.fsi")
        save_sharded_index(sharded, path)
        report = run_check(index=path, patterns=["quick"])
        assert report.ok

    def test_run_check_reports_seeded_violation(self, small_corpus):
        sharded = build_sharded(small_corpus)
        sharded.shards[1].global_ids[0] = 0
        report = run_check(index=sharded, patterns=[])
        assert not report.ok
        assert any(f.code == "SHD001" for f in report.findings)
