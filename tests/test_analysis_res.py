"""RES rule tests: resource-lifecycle rules over the ownership
lattice, including the two reconstructed pre-analyzer bug shapes
(the unmanaged CLI engine and the ``_FORK_SHARED`` strong-ref leak)."""

import os
import re
import textwrap

import pytest

from repro.analysis import check_concurrency_paths
from repro.analysis.res_checks import (
    KNOWN_FACTORIES,
    RULES,
    check_source,
)
from repro.errors import AnalysisError

FIXTURES = os.path.join(
    os.path.dirname(__file__), "fixtures", "concurrency"
)

RES_RULES = sorted(RULES)


def run(snippet):
    return check_source(textwrap.dedent(snippet), "snippet.py")


def codes(hits):
    return [finding.code for finding, _ in hits]


def read_fixture(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        return f.read()


class TestFixturePairs:
    @pytest.mark.parametrize("rule", RES_RULES)
    def test_bad_fixture_fires_exactly_its_rule(self, rule):
        name = rule.lower() + "_bad.py"
        hits = check_source(read_fixture(name), name)
        assert hits, f"{name} produced no findings"
        assert set(codes(hits)) == {rule}

    @pytest.mark.parametrize("rule", RES_RULES)
    def test_fixed_fixture_is_clean(self, rule):
        name = rule.lower() + "_fixed.py"
        assert check_source(read_fixture(name), name) == []

    @pytest.mark.parametrize("rule", RES_RULES)
    def test_justifications_are_machine_checkable(self, rule):
        name = rule.lower() + "_bad.py"
        hits = check_source(read_fixture(name), name)
        for _finding, justification in hits:
            assert justification.rule == rule
            assert re.match(
                rf"^{rule}: .+  \[.+\]$", justification.render()
            )


class TestPrePrSixShapes:
    """The two runtime bugs PR 6 fixed, reconstructed as fixtures,
    must be caught statically now."""

    def test_unmanaged_cli_engine_is_res001(self):
        hits = check_source(
            read_fixture("res001_bad.py"), "res001_bad.py"
        )
        finding, justification = hits[0]
        assert finding.code == "RES001"
        assert "FreeEngine" in finding.message
        assert "OPEN at the exit" in justification.fact

    def test_fork_shared_strong_ref_is_res003(self):
        hits = check_source(
            read_fixture("res003_bad.py"), "res003_bad.py"
        )
        assert codes(hits) == ["RES003", "RES003"]
        messages = " | ".join(f.message for f, _ in hits)
        assert "strong `self` reference" in messages
        assert "finalize" in messages


class TestEscape:
    def test_known_factory_leak(self):
        hits = run("""
        def build(corpus, index, flag):
            engine = FreeEngine(corpus, index)
            if flag:
                return None
            engine.close()
            return None
        """)
        assert codes(hits) == ["RES001"]

    def test_local_resource_class_is_tracked(self):
        hits = run("""
        class Conn:
            def close(self):
                pass

        def dial():
            conn = Conn()
            conn.ping()
            return None
        """)
        assert codes(hits) == ["RES001"]

    def test_canonical_factory_through_import(self):
        hits = run("""
        import mmap

        def view(fd, length):
            m = mmap.mmap(fd, length)
            m.madvise(0)
            return None
        """)
        assert codes(hits) == ["RES001"]

    def test_with_managed_is_clean(self):
        hits = run(read_fixture("res001_fixed.py"))
        assert hits == []

    def test_stored_on_self_is_transferred(self):
        hits = run("""
        class Holder:
            def attach(self, path):
                handle = open(path)
                self.handle = handle
        """)
        assert hits == []

    def test_shutdown_counts_as_close(self):
        hits = run("""
        from concurrent.futures import ThreadPoolExecutor

        def work(fn):
            pool = ThreadPoolExecutor(max_workers=1)
            pool.submit(fn)
            pool.shutdown()
            return None
        """)
        assert hits == []


class TestDoubleClose:
    def test_sequential_double_close(self):
        hits = run("""
        def f(path):
            handle = open(path)
            handle.close()
            handle.close()
        """)
        assert codes(hits) == ["RES002"]

    def test_branch_close_then_join_close_fires(self):
        hits = run("""
        def f(path, flag):
            handle = open(path)
            if flag:
                handle.close()
            else:
                handle.close()
            handle.close()
        """)
        assert codes(hits) == ["RES002"]

    def test_close_on_one_branch_only_is_not_definite(self):
        # MAY-closed is not MUST-closed: no RES002 (and no RES001 —
        # the final close covers the open path).
        hits = run("""
        def f(path, flag):
            handle = open(path)
            if flag:
                handle.close()
            handle.close()
        """)
        assert hits == []


class TestRegistries:
    def test_weakref_wrapped_store_is_clean(self):
        hits = run(read_fixture("res003_fixed.py"))
        assert hits == []

    def test_append_self_fires(self):
        hits = run("""
        _LIVE = []

        class Engine:
            def register(self):
                _LIVE.append(self)
        """)
        assert codes(hits) == ["RES003"]

    def test_local_container_is_not_a_registry(self):
        hits = run("""
        class Engine:
            def snapshot(self):
                live = []
                live.append(self)
                return live
        """)
        assert hits == []


class TestDelForCorrectness:
    def test_cleanup_del_fires(self):
        hits = run(read_fixture("res004_bad.py"))
        assert codes(hits) == ["RES004"]

    def test_empty_del_is_ignored(self):
        hits = run("""
        class C:
            def __del__(self):
                pass
        """)
        assert hits == []


class TestEngineContract:
    def test_rule_registry_complete(self):
        assert RES_RULES == ["RES001", "RES002", "RES003", "RES004"]

    def test_factory_vocabulary_covers_the_serve_stack(self):
        assert {
            "FreeEngine", "ShardedFreeEngine", "DiskCorpus",
            "ProcessPoolExecutor", "open",
        } <= KNOWN_FACTORIES

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            check_source("class (:\n", "bad.py")

    def test_unreadable_file_raises_analysis_error(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        real_open = open

        def failing_open(path, *args, **kwargs):
            if str(path) == str(target):
                raise OSError("permission denied")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr("builtins.open", failing_open)
        with pytest.raises(AnalysisError, match="cannot read"):
            check_concurrency_paths([str(tmp_path)])

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            check_concurrency_paths(["/no/such/path/anywhere"])

    def test_noqa_suppresses_and_drops_justification(self, tmp_path):
        source = textwrap.dedent("""
        def f(path):
            handle = open(path)  # noqa: RES001
            handle.read()
        """)
        target = tmp_path / "mod.py"
        target.write_text(source)
        findings, justifications = check_concurrency_paths(
            [str(target)]
        )
        assert findings == []
        assert justifications == {}
